"""Integration tests of the public API: cluster assembly, segments,
processes, op builders, both prototypes."""

import pytest

from repro.api import Cluster
from repro.params import Params


def test_cluster_builds_nodes():
    cluster = Cluster(n_nodes=3)
    assert len(cluster) == 3
    assert cluster.node(2).node_id == 2


def test_cluster_needs_a_node():
    with pytest.raises(ValueError):
        Cluster(n_nodes=0)


def test_quickstart_write_fence_read():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=1, pages=1, name="data")
    proc = cluster.create_process(node=0, name="writer")
    base = proc.map(seg)
    got = []

    def program(p):
        yield p.store(base, 42)
        yield p.fence()
        got.append((yield p.load(base)))

    ctx = cluster.start(proc, program)
    cluster.run_programs([ctx])
    assert got == [42]
    assert seg.peek(0) == 42
    cluster.assert_quiescent()


def test_segment_names_unique():
    cluster = Cluster(n_nodes=2)
    cluster.alloc_segment(home=0, pages=1, name="s")
    with pytest.raises(ValueError):
        cluster.alloc_segment(home=1, pages=1, name="s")
    assert cluster.segment("s").home == 0


def test_home_process_accesses_segment_locally():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=0, pages=1, name="data")
    proc = cluster.create_process(node=0, name="local")
    base = proc.map(seg)
    got = []

    def program(p):
        yield p.store(base + 8, 5)
        got.append((yield p.load(base + 8)))

    cluster.run_programs([cluster.start(proc, program)])
    assert got == [5]
    # No network traffic for home accesses.
    assert cluster.node(0).hib.stats["remote_writes"] == 0


@pytest.mark.parametrize("prototype", [1, 2])
def test_atomics_via_api_both_prototypes(prototype):
    params = Params(prototype=prototype)
    cluster = Cluster(n_nodes=2, params=params)
    seg = cluster.alloc_segment(home=1, pages=1, name="sync")
    seg.poke(0, 10)
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)
    got = []

    def program(p):
        got.append((yield from p.fetch_and_add(base, 5)))
        got.append((yield from p.fetch_and_store(base + 4, 7)))
        got.append((yield from p.compare_and_swap(base, 15, 99)))

    cluster.run_programs([cluster.start(proc, program)])
    assert got == [10, 0, 15]
    assert seg.peek(0) == 99
    assert seg.peek(4) == 7


@pytest.mark.parametrize("prototype", [1, 2])
def test_remote_copy_via_api_both_prototypes(prototype):
    params = Params(prototype=prototype)
    cluster = Cluster(n_nodes=2, params=params)
    src = cluster.alloc_segment(home=1, pages=1, name="src")
    dst = cluster.alloc_segment(home=0, pages=1, name="dst")
    src.poke(0x20, 1234)
    proc = cluster.create_process(node=0, name="p")
    src_base = proc.map(src)
    dst_base = proc.map(dst)

    def program(p):
        yield from p.remote_copy(src_base + 0x20, dst_base + 0x40)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    assert dst.peek(0x40) == 1234


def test_replica_mapping_with_protocol():
    cluster = Cluster(n_nodes=3, protocol="telegraphos")
    seg = cluster.alloc_segment(home=0, pages=1, name="shared")
    writer = cluster.create_process(node=1, name="writer")
    reader = cluster.create_process(node=2, name="reader")
    wbase = writer.map(seg, mode="replica")
    rbase = reader.map(seg, mode="replica")

    def wprog(p):
        yield p.store(wbase, 77)

    ctx = cluster.start(writer, wprog)
    cluster.run_programs([ctx])
    # The write reached the home and the other replica.
    assert seg.peek(0) == 77
    got = []

    def rprog(p):
        got.append((yield p.load(rbase)))

    cluster.run_programs([cluster.start(reader, rprog)])
    assert got == [77]
    assert not cluster.checker().subsequence_violations()


def test_replica_preloads_existing_contents():
    cluster = Cluster(n_nodes=2, protocol="telegraphos")
    seg = cluster.alloc_segment(home=0, pages=1, name="shared")
    seg.poke(0x10, 5555)
    reader = cluster.create_process(node=1, name="reader")
    base = reader.map(seg, mode="replica")
    got = []

    def prog(p):
        got.append((yield p.load(base + 0x10)))

    cluster.run_programs([cluster.start(reader, prog)])
    assert got == [5555]


def test_multi_page_replica_is_contiguous_and_correct():
    cluster = Cluster(n_nodes=2, protocol="telegraphos")
    page = cluster.amap.page_bytes
    seg = cluster.alloc_segment(home=0, pages=3, name="big")
    for i in range(3):
        seg.poke(i * page, 900 + i)
    reader = cluster.create_process(node=1, name="reader")
    base = reader.map(seg, mode="replica")
    got = []

    def prog(p):
        for i in range(3):
            got.append((yield p.load(base + i * page)))

    cluster.run_programs([cluster.start(reader, prog)])
    assert got == [900, 901, 902]
    # The replica occupies one consecutive backend-page run.
    placements = [
        cluster.directory.group(0, seg.gpage + i).placement[1]
        for i in range(3)
    ]
    assert placements == list(range(placements[0], placements[0] + 3))


def test_non_contiguous_resident_replica_raises_not_corrupts():
    """Regression: a pre-existing replica placement that cannot back a
    consecutive multi-page mapping must fail loudly (the old code
    silently mapped the wrong backend pages)."""
    cluster = Cluster(n_nodes=2, protocol="telegraphos")
    seg = cluster.alloc_segment(home=0, pages=2, name="split")
    reader = cluster.create_process(node=1, name="reader")
    vm = cluster.node(1).vm
    directory = cluster.directory
    # Replicate the segment's first page, then occupy the page right
    # after it, so the second replica page cannot be adjacent.
    first = vm.alloc_backend_pages(1)
    blocker = vm.alloc_backend_pages(1)
    assert blocker == first + 1
    group = directory.create_group(0, seg.gpage)
    directory.add_replica(group, 1, first)
    with pytest.raises(RuntimeError, match="not contiguous"):
        reader.map(seg, mode="replica")
    # The failed mapping released the page it had allocated on the fly.
    assert vm.alloc_backend_pages(1) == blocker + 1


def test_bad_mapping_mode_rejected():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=0, pages=1, name="s")
    proc = cluster.create_process(node=1, name="p")
    with pytest.raises(ValueError):
        proc.map(seg, mode="bogus")


def test_multi_page_segment():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=1, pages=3, name="big")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)
    page = cluster.amap.page_bytes

    def program(p):
        for i in range(3):
            yield p.store(base + i * page, 100 + i)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    for i in range(3):
        assert seg.peek(i * page) == 100 + i


def test_chain_topology_cluster_works():
    cluster = Cluster(n_nodes=4, topology="chain")
    seg = cluster.alloc_segment(home=3, pages=1, name="far")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 1)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    assert seg.peek(0) == 1


def test_prototype2_uses_dram_backend():
    cluster = Cluster(n_nodes=2, params=Params(prototype=2))
    from repro.hib.backend import DramBackend

    assert isinstance(cluster.node(0).backend, DramBackend)
    seg = cluster.alloc_segment(home=1, pages=1, name="d")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 9)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    assert seg.peek(0) == 9
