"""The unified collectives surface: both backends agree on semantics
(barrier ordering, reductions, broadcast, fetch&add permutations), the
NIC backend's two release modes work, and the group lifecycle is
policed.  :mod:`repro.api.sync`'s deprecated shims are covered at the
bottom."""

import warnings

import pytest

from repro.api import Cluster, ClusterConfig

N = 4


def make_cluster(backend, **kw):
    return Cluster(ClusterConfig(n_nodes=N, collectives=backend,
                                 trace=False, **kw))


def run_all(cluster, group, body):
    """Start ``body(proc, collective, rank)`` on every member, run to
    completion."""
    contexts = []
    for rank, node in enumerate(group.members):
        proc = cluster.create_process(node=node, name=f"m{rank}")
        collective = group.join(proc)
        contexts.append(proc.start(
            lambda p, c=collective, r=rank: body(p, c, r)))
    cluster.run(join=contexts)


# -- backend-independent semantics ----------------------------------------


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_barrier_releases_nobody_early(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    arrivals, released = [], []

    def body(p, c, rank):
        yield p.think(rank * 40_000)  # stagger arrivals
        arrivals.append(cluster.now)
        yield from c.barrier()
        released.append(cluster.now)

    run_all(cluster, group, body)
    assert len(released) == N
    assert min(released) >= max(arrivals)


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_barrier_is_reusable_across_rounds(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    phases = {rank: [] for rank in range(N)}

    def body(p, c, rank):
        for phase in range(3):
            yield p.think((rank + 1) * 7_000)
            yield from c.barrier()
            phases[rank].append(phase)

    run_all(cluster, group, body)
    assert all(seen == [0, 1, 2] for seen in phases.values())


@pytest.mark.parametrize("backend", ["host", "nic"])
@pytest.mark.parametrize("op,expected", [
    ("sum", sum(7 * r - 3 for r in range(N))),
    ("min", min(7 * r - 3 for r in range(N))),
    ("max", max(7 * r - 3 for r in range(N))),
])
def test_all_reduce_agrees_everywhere(backend, op, expected):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    results = {}

    def body(p, c, rank):
        results[rank] = yield from c.all_reduce(op, 7 * rank - 3)

    run_all(cluster, group, body)
    assert results == {rank: expected for rank in range(N)}


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_all_reduce_rejects_unknown_op(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    proc = cluster.create_process(node=group.members[0], name="p")
    collective = group.join(proc)
    with pytest.raises(ValueError, match="xor"):
        next(collective.all_reduce("xor", 1))


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_broadcast_delivers_the_root_value(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    results = {}

    def body(p, c, rank):
        value = 909 if rank == 2 else None
        results[rank] = yield from c.broadcast(value, root=2)

    run_all(cluster, group, body)
    assert results == {rank: 909 for rank in range(N)}


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_fetch_add_yields_a_permutation(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("g")
    seg = cluster.alloc_segment(home=0, pages=1, name="hot")
    per_member = 3
    fetched = []

    def body(p, c, rank):
        vaddr = p.map(seg)
        for _ in range(per_member):
            fetched.append((yield from c.fetch_add(vaddr)))

    run_all(cluster, group, body)
    total = N * per_member
    assert sorted(fetched) == list(range(total))
    assert seg.peek(0) == total


@pytest.mark.parametrize("backend", ["host", "nic"])
def test_single_member_group_is_trivial(backend):
    cluster = make_cluster(backend)
    group = cluster.collective_group("solo", nodes=[1])
    results = []

    def body(p, c, rank):
        yield from c.barrier()
        results.append((yield from c.all_reduce("sum", 5)))
        results.append((yield from c.broadcast(6, root=0)))

    run_all(cluster, group, body)
    assert results == [5, 6]


def test_subset_group_ranks_follow_member_order():
    cluster = make_cluster("nic")
    group = cluster.collective_group("pair", nodes=[3, 1])
    proc = cluster.create_process(node=1, name="p")
    collective = group.join(proc)
    assert collective.rank == 1
    assert collective.n_parties == 2


# -- NIC backend specifics ------------------------------------------------


@pytest.mark.parametrize("release", ["tree", "multicast"])
def test_nic_release_modes_both_complete(release):
    cluster = make_cluster("nic")
    group = cluster.collective_group("g", release=release, radix=3)
    results = {}

    def body(p, c, rank):
        results[rank] = yield from c.all_reduce("sum", rank)

    run_all(cluster, group, body)
    assert results == {rank: sum(range(N)) for rank in range(N)}
    root_stats = cluster.node(group.members[0]).hib.coll.stats
    assert root_stats["rounds"] == 1
    if release == "multicast":
        # The root fanned the release out of its multicast directory
        # in one shot: all N-1 others at once.
        assert root_stats["release_fanout_max"] == N - 1


def test_nic_combining_merges_concurrent_fetch_adds():
    cluster = make_cluster("nic")
    group = cluster.collective_group("g", radix=4, combine_window_ns=1600)
    seg = cluster.alloc_segment(home=0, pages=1, name="hot")
    fetched = []

    def body(p, c, rank):
        vaddr = p.map(seg)
        for _ in range(4):
            fetched.append((yield from c.fetch_add(vaddr)))

    run_all(cluster, group, body)
    assert sorted(fetched) == list(range(4 * N))
    combined = sum(
        cluster.node(n).hib.coll.stats["combine_hits"] for n in range(N))
    assert combined > 0


def test_nic_group_close_unregisters_and_unmaps():
    cluster = make_cluster("nic")
    group = cluster.collective_group("g", release="multicast")
    root = cluster.node(group.members[0])
    assert root.hib.multicast.entries_used == N - 1
    group.close()
    assert root.hib.multicast.entries_used == 0
    proc = cluster.create_process(node=0, name="late")
    with pytest.raises(RuntimeError, match="closed"):
        group.join(proc)
    group.close()  # idempotent


# -- group lifecycle policing ---------------------------------------------


def test_duplicate_group_name_rejected():
    cluster = make_cluster("host")
    cluster.collective_group("g")
    with pytest.raises(ValueError, match="already exists"):
        cluster.collective_group("g")


def test_non_member_join_rejected():
    cluster = make_cluster("host")
    group = cluster.collective_group("g", nodes=[0, 1])
    outsider = cluster.create_process(node=2, name="o")
    with pytest.raises(ValueError, match="not a member"):
        group.join(outsider)


def test_bogus_backend_and_member_lists_rejected():
    cluster = make_cluster("host")
    with pytest.raises(ValueError, match="backend"):
        cluster.collective_group("g", backend="fpga")
    with pytest.raises(ValueError, match="distinct"):
        cluster.collective_group("h", nodes=[0, 0, 1])
    with pytest.raises(ValueError, match="at least one"):
        cluster.collective_group("i", nodes=[])


def test_backend_defaults_to_config_and_overrides():
    cluster = make_cluster("nic")
    assert cluster.collective_group("a").backend == "nic"
    assert cluster.collective_group("b", backend="host").backend == "host"


# -- hib.coll.* metrics ----------------------------------------------------


def test_collective_metrics_registered():
    cluster = make_cluster("nic", metrics=True)
    group = cluster.collective_group("g")

    def body(p, c, rank):
        yield from c.barrier()

    run_all(cluster, group, body)
    metrics = cluster.stats()["metrics"]
    assert metrics["hib.coll.rounds"]["node=0"] == 1
    assert sum(metrics["hib.coll.joins_sent"].values()) == N - 1


# -- the deprecated repro.api.sync shims ----------------------------------


def test_sync_shims_warn_but_still_work():
    from repro.api import Barrier, Flag, SpinLock
    from repro.api.collectives import Mutex, Signal

    cluster = make_cluster("host")
    seg = cluster.alloc_segment(home=0, pages=1, name="s")
    proc = cluster.create_process(node=1, name="p")
    base = proc.map(seg)

    with pytest.deprecated_call(match="Mutex"):
        lock = SpinLock(proc, base)
    assert isinstance(lock, Mutex)
    with pytest.deprecated_call(match="Signal"):
        flag = Flag(proc, base + 8)
    assert isinstance(flag, Signal)
    with pytest.deprecated_call(match="counter_barrier_wait"):
        barrier = Barrier(proc, base + 12, base + 16, n_parties=1)

    def program(p):
        yield from lock.acquire()
        yield p.store(base + 4, 1)
        yield from lock.release()
        yield from flag.raise_flag(3)
        yield from barrier.wait()

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # construction warned, use must not
        cluster.run(join=[proc.start(program)])
    assert seg.peek(4) == 1
    assert seg.peek(8) == 3
    assert lock.acquisitions == 1
