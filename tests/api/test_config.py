"""ClusterConfig and the redesigned Cluster construction surface:
config round-trips, deprecation of the bare-argument forms, context
management, and the stats/run facades."""

import warnings

import pytest

from repro.api import Cluster, ClusterConfig
from repro.params import Params


# -- the config object ----------------------------------------------------


def test_config_defaults_build_a_cluster():
    cluster = Cluster(ClusterConfig())
    assert len(cluster) == 2
    assert cluster.protocol == "none"


def test_config_rejects_empty_cluster():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=0)


def test_config_round_trips_through_plain_data():
    config = ClusterConfig(
        n_nodes=4, protocol="telegraphos", topology="chain",
        params=Params(prototype=2), trace=False, cache_entries=8,
        dram_bytes=1 << 20, replication_threshold=5,
        metrics=False, trace_lanes=True, profile_kernel=True,
    )
    data = config.to_dict()
    assert data["params"]["prototype"] == 2  # JSON-safe nesting
    assert ClusterConfig.from_dict(data) == config


def test_config_round_trip_preserves_none_params():
    config = ClusterConfig(n_nodes=3)
    assert ClusterConfig.from_dict(config.to_dict()) == config


def test_config_collectives_round_trips():
    config = ClusterConfig(n_nodes=4, collectives="nic")
    data = config.to_dict()
    assert data["collectives"] == "nic"
    assert ClusterConfig.from_dict(data) == config
    assert ClusterConfig().collectives == "host"


def test_config_rejects_unknown_collectives_backend():
    with pytest.raises(ValueError, match="collectives"):
        ClusterConfig(collectives="fpga")


# -- deprecation of the old constructor forms -----------------------------


def test_config_construction_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        Cluster(ClusterConfig(n_nodes=2))


def test_keyword_construction_warns_but_works():
    with pytest.deprecated_call():
        cluster = Cluster(n_nodes=3, protocol="telegraphos")
    assert len(cluster) == 3
    assert cluster.config == ClusterConfig(n_nodes=3, protocol="telegraphos")


def test_positional_construction_warns_but_works():
    with pytest.deprecated_call():
        cluster = Cluster(3, "telegraphos", "chain")
    assert cluster.config.n_nodes == 3
    assert cluster.config.protocol == "telegraphos"
    assert cluster.config.topology == "chain"


def test_config_plus_extra_arguments_rejected():
    with pytest.raises(TypeError):
        Cluster(ClusterConfig(n_nodes=2), protocol="none")


def test_positional_and_keyword_duplicate_rejected():
    with pytest.raises(TypeError):
        Cluster(3, n_nodes=3)


def test_too_many_positionals_rejected():
    with pytest.raises(TypeError):
        Cluster(2, "none", "star", None, True, 32, 1 << 22, None, "extra")


# -- context manager and facades ------------------------------------------


def _tiny_run(cluster):
    seg = cluster.alloc_segment(home=1, pages=1, name="d")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 11)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    return seg


def test_context_manager_runs_and_stays_inspectable():
    with Cluster(ClusterConfig(n_nodes=2)) as cluster:
        seg = _tiny_run(cluster)
    assert seg.peek(0) == 11
    assert cluster.stats()["quiescent"]


def test_run_rejects_until_and_join_together():
    cluster = Cluster(ClusterConfig(n_nodes=2))
    with pytest.raises(TypeError):
        cluster.run(until=100, join=[])


def test_stats_facade_shape():
    with Cluster(ClusterConfig(n_nodes=2, protocol="telegraphos")) as cluster:
        _tiny_run(cluster)
        stats = cluster.stats(check_coherence=True)
    assert stats["n_nodes"] == 2
    assert stats["protocol"] == "telegraphos"
    assert stats["quiescent"] is True
    assert stats["outstanding"] == {0: 0, 1: 0}
    assert stats["metrics"]["hib.remote_writes"]["node=0"] == 1
    assert stats["coherence"]["subsequence_violations"] == []
    assert stats["coherence"]["divergent_words"] == []
    assert stats["now_ns"] == cluster.now


def test_run_programs_is_a_compatible_alias():
    cluster = Cluster(ClusterConfig(n_nodes=2))
    seg = cluster.alloc_segment(home=1, pages=1, name="d")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 7)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    assert seg.peek(0) == 7
