"""Whole-system integration: everything at once on an 8-node mesh.

Simultaneously runs, on one cluster:

- a producer/consumer stream over update replicas,
- lock-protected counter increments from three nodes,
- a message channel,
- a remote-paging style bulk copy,
- and a scheduler timeslicing two programs on one node,

then checks every global invariant: no lost updates, coherent replicas
(subsequence + convergence), quiescent outstanding counters, drained
pending-write counters, and channel FIFO integrity.
"""

from repro.api import Channel, Cluster, SpinLock
from repro.os.scheduler import RoundRobinScheduler


def test_kitchen_sink_mesh_cluster():
    cluster = Cluster(n_nodes=8, topology="mesh", protocol="telegraphos")
    contexts = []

    # --- 1. producer/consumer over replicas (nodes 0 -> 1, 2) --------
    stream = cluster.alloc_segment(home=0, pages=1, name="stream")
    flag = cluster.alloc_segment(home=0, pages=1, name="flag")
    producer = cluster.create_process(node=0, name="producer")
    pbase = producer.map(stream)
    pflag = producer.map(flag)
    batches, words = 3, 8

    def produce(p):
        for b in range(batches):
            for w in range(words):
                yield p.store(pbase + 4 * w, (b + 1) * 100 + w)
            yield p.fence()
            yield p.store(pflag, b + 1)

    contexts.append(cluster.start(producer, produce))
    consumer_got = {1: [], 2: []}
    for node in (1, 2):
        consumer = cluster.create_process(node=node, name=f"consumer{node}")
        cbase = consumer.map(stream, mode="replica")
        cflag = consumer.map(flag)

        def consume(p, cbase=cbase, cflag=cflag, node=node):
            for b in range(batches):
                while True:
                    seen = yield p.load(cflag)
                    if seen >= b + 1:
                        break
                    yield p.think(3000)
                consumer_got[node].append((yield p.load(cbase)))

        contexts.append(cluster.start(consumer, consume))

    # --- 2. lock-protected shared counter (nodes 3, 4, 5) -------------
    sync = cluster.alloc_segment(home=3, pages=1, name="sync")
    shared = cluster.alloc_segment(home=3, pages=1, name="shared")
    per_node = 4
    for node in (3, 4, 5):
        worker = cluster.create_process(node=node, name=f"locker{node}")
        lock = SpinLock(worker, worker.map(sync))
        dbase = worker.map(shared)

        def work(p, lock=lock, dbase=dbase):
            for _ in range(per_node):
                yield from lock.acquire()
                value = yield p.load(dbase)
                yield p.store(dbase, value + 1)
                yield from lock.release()

        contexts.append(cluster.start(worker, work))

    # --- 3. message channel (node 6 -> node 7) -------------------------
    channel = Channel(cluster, sender_node=6, receiver_node=7, name="ch",
                      capacity=4, slot_words=8)
    sender = cluster.create_process(node=6, name="sender")
    receiver = cluster.create_process(node=7, name="receiver")
    channel.sender.bind(sender)
    channel.receiver.bind(receiver)
    n_msgs = 8
    inbox = []

    def send(p):
        for i in range(n_msgs):
            yield from channel.sender.send([i, i * i])

    def recv(p):
        for _ in range(n_msgs):
            inbox.append((yield from channel.receiver.recv()))

    contexts.append(cluster.start(sender, send))
    contexts.append(cluster.start(receiver, recv))

    # --- 4. bulk remote copy (node 7 pulls from node 0) ---------------
    bulk_src = cluster.alloc_segment(home=0, pages=1, name="bulk")
    for i in range(16):
        bulk_src.poke(4 * i, 7000 + i)
    bulk_dst = cluster.alloc_segment(home=7, pages=1, name="bulkdst")
    pager = cluster.create_process(node=7, name="pager")
    src_base = pager.map(bulk_src)
    dst_base = pager.map(bulk_dst)

    def page_in(p):
        for i in range(16):
            yield from p.remote_copy(src_base + 4 * i, dst_base + 4 * i)
        yield p.fence()

    contexts.append(cluster.start(pager, page_in))

    # --- 5. two timesliced compute programs on node 5 -------------------
    RoundRobinScheduler(
        cluster.sim, cluster.params.timing, cluster.node(5).cpu,
        quantum_ns=50_000,
    )
    ticks = {"a": 0, "b": 0}
    for tag in ("a", "b"):
        extra = cluster.create_process(node=5, name=f"bg-{tag}")

        def spin(p, tag=tag):
            for _ in range(5):
                yield p.think(20_000)
                ticks[tag] += 1

        contexts.append(cluster.start(extra, spin))

    # --- run and verify everything --------------------------------------
    cluster.run_programs(contexts, limit_ns=10**12)

    # Producer/consumer: every consumer saw only real batch values.
    for node in (1, 2):
        assert len(consumer_got[node]) == batches
        for value in consumer_got[node]:
            assert value % 100 == 0 and value > 0
    # Locking: no lost updates.
    assert shared.peek(0) == 3 * per_node
    # Channel: FIFO and complete.
    assert inbox == [[i, i * i] for i in range(n_msgs)]
    # Bulk copy: all 16 words arrived.
    for i in range(16):
        assert bulk_dst.peek(4 * i) == 7000 + i
    # Timeslicing: both background programs finished.
    assert ticks == {"a": 5, "b": 5}
    # Global coherence invariants.
    checker = cluster.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(cluster.backends(), words_per_page=8)
    cluster.assert_quiescent()
    for engine in cluster.engines.values():
        if hasattr(engine, "counters"):
            assert engine.counters.used == 0
