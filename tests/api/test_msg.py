"""Tests for the remote-write message channel."""

import pytest

from repro.api import Channel, Cluster


def make_channel(capacity=4, slot_words=8):
    cluster = Cluster(n_nodes=2)
    channel = Channel(cluster, sender_node=0, receiver_node=1,
                      name="ch", capacity=capacity, slot_words=slot_words)
    sender_proc = cluster.create_process(node=0, name="sender")
    receiver_proc = cluster.create_process(node=1, name="receiver")
    channel.sender.bind(sender_proc)
    channel.receiver.bind(receiver_proc)
    return cluster, channel, sender_proc, receiver_proc


def test_single_message_roundtrip():
    cluster, channel, sp, rp = make_channel()
    got = []

    def send(p):
        yield from channel.sender.send([1, 2, 3])

    def recv(p):
        got.append((yield from channel.receiver.recv()))

    ctxs = [cluster.start(sp, send), cluster.start(rp, recv)]
    cluster.run_programs(ctxs)
    assert got == [[1, 2, 3]]


def test_messages_delivered_in_order():
    cluster, channel, sp, rp = make_channel(capacity=8)
    n = 20
    got = []

    def send(p):
        for i in range(n):
            yield from channel.sender.send([i, i * i])

    def recv(p):
        for _ in range(n):
            got.append((yield from channel.receiver.recv()))

    ctxs = [cluster.start(sp, send), cluster.start(rp, recv)]
    cluster.run_programs(ctxs)
    assert got == [[i, i * i] for i in range(n)]
    assert channel.sender.messages_sent == n
    assert channel.receiver.messages_received == n


def test_flow_control_blocks_sender_when_ring_full():
    cluster, channel, sp, rp = make_channel(capacity=2)
    n = 6
    send_times = []
    got = []

    def send(p):
        for i in range(n):
            yield from channel.sender.send([i])
            send_times.append(cluster.now)

    def recv(p):
        yield p.think(3_000_000)  # receiver is slow to start
        for _ in range(n):
            got.append((yield from channel.receiver.recv()))

    ctxs = [cluster.start(sp, send), cluster.start(rp, recv)]
    cluster.run_programs(ctxs)
    assert [m[0] for m in got] == list(range(n))
    # First two sends proceed immediately; the third waits for credit.
    assert send_times[1] < 3_000_000
    assert send_times[2] > 3_000_000


def test_payload_size_enforced():
    cluster, channel, sp, rp = make_channel(slot_words=4)  # 2 payload words

    def send(p):
        yield from channel.sender.send([1, 2, 3])

    ctx = cluster.start(sp, send)
    cluster.sim.strict_failures = False
    cluster.sim.run()
    assert isinstance(ctx.process.exception, ValueError)


def test_unbound_endpoints_rejected():
    cluster = Cluster(n_nodes=2)
    channel = Channel(cluster, 0, 1, name="ch")
    with pytest.raises(RuntimeError):
        next(channel.sender.send([1]))
    with pytest.raises(RuntimeError):
        next(channel.receiver.recv())


def test_bind_wrong_node_rejected():
    cluster = Cluster(n_nodes=3)
    channel = Channel(cluster, 0, 1, name="ch")
    wrong = cluster.create_process(node=2, name="wrong")
    with pytest.raises(ValueError):
        channel.sender.bind(wrong)


def test_channel_geometry_validated():
    cluster = Cluster(n_nodes=2)
    with pytest.raises(ValueError):
        Channel(cluster, 0, 1, name="bad", capacity=0)
    with pytest.raises(ValueError):
        Channel(cluster, 0, 1, name="bad2", slot_words=2)
