"""Tests for locks, barriers, and flags — including the §2.3.5
memory-consistency demonstration."""

import pytest

from repro.api import Barrier, Cluster, Flag, SpinLock
from repro.params import Params


def make_cluster(n=3, prototype=1, **kw):
    return Cluster(n_nodes=n, params=Params(prototype=prototype), **kw)


@pytest.mark.parametrize("prototype", [1, 2])
def test_spinlock_mutual_exclusion(prototype):
    """N contenders increment a shared counter under a lock: no lost
    updates, and the critical sections never overlap."""
    cluster = make_cluster(n=3, prototype=prototype)
    sync = cluster.alloc_segment(home=0, pages=1, name="sync")
    data = cluster.alloc_segment(home=0, pages=1, name="data")
    per_proc = 5
    sections = []
    ctxs = []
    for node in range(3):
        proc = cluster.create_process(node=node, name=f"p{node}")
        lock_base = proc.map(sync)
        data_base = proc.map(data)
        lock = SpinLock(proc, lock_base)

        def program(p, lock=lock, data_base=data_base, node=node):
            for _ in range(per_proc):
                yield from lock.acquire()
                sections.append(("enter", node, cluster.now))
                value = yield p.load(data_base)
                yield p.think(500)
                yield p.store(data_base, value + 1)
                sections.append(("exit", node, cluster.now))
                yield from lock.release()

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    assert data.peek(0) == 3 * per_proc
    # Critical sections are disjoint in time.
    events = sorted(sections, key=lambda e: e[2])
    depth = 0
    for kind, _, _ in events:
        depth += 1 if kind == "enter" else -1
        assert 0 <= depth <= 1


def test_spinlock_contention_counts():
    cluster = make_cluster(n=2)
    sync = cluster.alloc_segment(home=0, pages=1, name="sync")
    proc = cluster.create_process(node=1, name="p")
    base = proc.map(sync)
    lock = SpinLock(proc, base)
    sync.poke(0, 1)  # already held by someone else

    def program(p):
        # Try twice while held, then the holder releases.
        yield from lock.acquire()

    ctx = cluster.start(proc, program)
    cluster.sim.schedule(200_000, sync.poke, 0, 0)
    cluster.run_programs([ctx])
    assert lock.spins > 0
    assert lock.acquisitions == 1


def test_barrier_synchronises_parties():
    cluster = make_cluster(n=3)
    sync = cluster.alloc_segment(home=0, pages=1, name="sync")
    after = []
    ctxs = []
    for node in range(3):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(sync)
        barrier = Barrier(proc, base, base + 4, n_parties=3)

        def program(p, barrier=barrier, node=node):
            yield p.think(node * 50_000)  # stagger arrivals
            yield from barrier.wait()
            after.append((node, cluster.now))

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    assert len(after) == 3
    times = [t for _, t in after]
    # Nobody leaves before the last arrival (node 2 at >=100µs).
    assert min(times) >= 100_000


def test_barrier_reusable_across_phases():
    cluster = make_cluster(n=2)
    sync = cluster.alloc_segment(home=0, pages=1, name="sync")
    phases = {0: [], 1: []}
    ctxs = []
    for node in range(2):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(sync)
        barrier = Barrier(proc, base, base + 4, n_parties=2)

        def program(p, barrier=barrier, node=node):
            for phase in range(3):
                yield p.think((node + 1) * 10_000)
                yield from barrier.wait()
                phases[node].append(phase)

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    assert phases[0] == [0, 1, 2]
    assert phases[1] == [0, 1, 2]


def test_flag_with_fence_never_shows_stale_data():
    """§2.3.5 made safe: producer writes data then raises the flag
    (with embedded FENCE); consumer that saw the flag reads fresh
    data."""
    cluster = make_cluster(n=3)
    # data homed on node 1, flag homed on node 2: different paths,
    # exactly the scenario of §2.3.5.
    data = cluster.alloc_segment(home=1, pages=1, name="data")
    flags = cluster.alloc_segment(home=2, pages=1, name="flag")

    producer = cluster.create_process(node=0, name="producer")
    data_w = producer.map(data)
    flag_w = producer.map(flags)
    flag = Flag(producer, flag_w)

    consumer = cluster.create_process(node=1, name="consumer")
    data_r = consumer.map(data)
    flag_r = consumer.map(flags)
    cflag = Flag(consumer, flag_r)
    got = []

    def produce(p):
        yield p.store(data_w, 4242)
        yield from flag.raise_flag()

    def consume(p):
        yield from cflag.await_value(1)
        got.append((yield p.load(data_r)))

    ctxs = [cluster.start(producer, produce), cluster.start(consumer, consume)]
    cluster.run_programs(ctxs)
    assert got == [4242]
