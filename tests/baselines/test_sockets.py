"""Tests for the socket message-passing baseline."""

from repro.baselines import SocketNetwork
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


def make_network(n=3):
    sim = Simulator()
    return sim, SocketNetwork(sim, DEFAULT_PARAMS, n)


def test_send_recv_roundtrip():
    sim, net = make_network()
    got = []

    def sender():
        yield from net.socket(0).send(1, [10, 20, 30])

    def receiver():
        payload = yield from net.socket(1).recv()
        got.append((payload, sim.now))

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got[0][0] == [10, 20, 30]
    # OS-mediated: tens of microseconds even for a tiny message.
    assert got[0][1] >= net.one_way_cost_ns(12) * 0.8


def test_messages_ordered_per_pair():
    sim, net = make_network()
    got = []

    def sender():
        for i in range(5):
            yield from net.socket(0).send(1, [i])

    def receiver():
        for _ in range(5):
            payload = yield from net.socket(1).recv()
            got.append(payload[0])

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_tags_demultiplex():
    sim, net = make_network()
    got = {}

    def sender():
        yield from net.socket(0).send(1, [111], tag="a")
        yield from net.socket(0).send(1, [222], tag="b")

    def receiver():
        got["b"] = yield from net.socket(1).recv(tag="b")
        got["a"] = yield from net.socket(1).recv(tag="a")

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == {"a": [111], "b": [222]}


def test_recv_blocks_until_message():
    sim, net = make_network()
    times = {}

    def receiver():
        yield from net.socket(1).recv()
        times["recv"] = sim.now

    def late_sender():
        yield 1_000_000
        yield from net.socket(0).send(1, [1])

    sim.spawn(receiver())
    sim.spawn(late_sender())
    sim.run()
    assert times["recv"] > 1_000_000


def test_cost_scales_with_size():
    _, net = make_network()
    small = net.one_way_cost_ns(8)
    large = net.one_way_cost_ns(8192)
    assert large > small * 5


def test_counters():
    sim, net = make_network()

    def sender():
        yield from net.socket(0).send(1, [1])

    def receiver():
        yield from net.socket(1).recv()

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert net.socket(0).sent == 1
    assert net.socket(1).received == 1
