"""Tests for the VSM (software DSM) baseline."""


from repro.api import Cluster
from repro.baselines import VsmManager


def make_vsm(n_nodes=3, pages=2):
    cluster = Cluster(n_nodes=n_nodes)
    seg = cluster.alloc_segment(home=0, pages=pages, name="vsm")
    vsm = VsmManager(cluster, seg)
    return cluster, seg, vsm


def test_first_read_faults_then_is_local():
    cluster, seg, vsm = make_vsm()
    seg.poke(0x10, 42)
    proc = cluster.create_process(node=1, name="reader")
    base = vsm.map_into(proc)
    got = []
    latencies = []

    def program(p):
        start = cluster.now
        got.append((yield p.load(base + 0x10)))
        latencies.append(cluster.now - start)
        start = cluster.now
        got.append((yield p.load(base + 0x10)))
        latencies.append(cluster.now - start)

    cluster.run_programs([cluster.start(proc, program)])
    assert got == [42, 42]
    assert vsm.read_faults == 1
    assert vsm.pages_transferred == 1
    # Second read is a local hit: orders of magnitude cheaper.
    assert latencies[1] < latencies[0] / 20


def test_write_fault_invalidates_other_readers():
    cluster, seg, vsm = make_vsm()
    seg.poke(0, 5)
    reader = cluster.create_process(node=1, name="reader")
    rbase = vsm.map_into(reader)
    writer = cluster.create_process(node=2, name="writer")
    wbase = vsm.map_into(writer)
    got = []

    def read_phase(p):
        got.append((yield p.load(rbase)))

    cluster.run_programs([cluster.start(reader, read_phase)])
    state = vsm.pages[0]
    assert 1 in state.copyset

    def write_phase(p):
        yield p.store(wbase, 9)

    cluster.run_programs([cluster.start(writer, write_phase)])
    assert vsm.write_faults == 1
    assert vsm.invalidations >= 1
    assert state.copyset == {2}
    assert state.owner == 2

    # The old reader faults again and sees the new value.
    def read_again(p):
        got.append((yield p.load(rbase)))

    cluster.run_programs([cluster.start(reader, read_again)])
    assert got == [5, 9]
    assert vsm.read_faults == 2


def test_home_node_starts_mapped_rw():
    cluster, seg, vsm = make_vsm()
    proc = cluster.create_process(node=0, name="home")
    base = vsm.map_into(proc)
    got = []

    def program(p):
        yield p.store(base, 7)
        got.append((yield p.load(base)))

    cluster.run_programs([cluster.start(proc, program)])
    assert got == [7]
    assert vsm.read_faults == 0
    assert vsm.write_faults == 0


def test_write_after_read_upgrades():
    cluster, seg, vsm = make_vsm()
    proc = cluster.create_process(node=1, name="rw")
    base = vsm.map_into(proc)

    def program(p):
        yield p.load(base)       # read fault: page arrives RO
        yield p.store(base, 3)   # write fault: upgrade to RW

    cluster.run_programs([cluster.start(proc, program)])
    assert vsm.read_faults == 1
    assert vsm.write_faults == 1
    assert vsm.pages_transferred == 1  # upgrade reuses the local copy


def test_pages_independent():
    cluster, seg, vsm = make_vsm(pages=2)
    proc = cluster.create_process(node=1, name="p")
    base = vsm.map_into(proc)
    page = cluster.amap.page_bytes

    def program(p):
        yield p.load(base)
        yield p.load(base + page)

    cluster.run_programs([cluster.start(proc, program)])
    assert vsm.read_faults == 2
    assert vsm.pages_transferred == 2


def test_vsm_fault_cost_is_hundreds_of_microseconds():
    """The §2.1 motivation: a VSM page transition costs ~1000x a
    Telegraphos remote write."""
    cluster, seg, vsm = make_vsm()
    proc = cluster.create_process(node=1, name="reader")
    base = vsm.map_into(proc)
    cost = {}

    def program(p):
        start = cluster.now
        yield p.load(base)
        cost["fault"] = cluster.now - start

    cluster.run_programs([cluster.start(proc, program)])
    assert cost["fault"] > 300_000  # > 300 µs
