"""VSM integration: ping-pong sharing, and mixing VSM data with
Telegraphos synchronization (the 'integrated hardware and software
solution' of §4)."""

from repro.api import Cluster, SpinLock
from repro.baselines import VsmManager
from repro.machine import Think


def test_vsm_ping_pong_ownership_migrates():
    """Two nodes alternately write the same page; ownership bounces,
    every write is preserved, and the fault counts match the
    transitions."""
    cluster = Cluster(n_nodes=3)
    seg = cluster.alloc_segment(home=0, pages=1, name="pp")
    vsm = VsmManager(cluster, seg)
    a = cluster.create_process(node=1, name="a")
    abase = vsm.map_into(a)
    b = cluster.create_process(node=2, name="b")
    bbase = vsm.map_into(b)
    rounds = 3

    def ping(p):
        for i in range(rounds):
            yield Think(2_000_000 * (2 * i))
            value = yield p.load(abase)
            yield p.store(abase, value + 1)

    def pong(p):
        for i in range(rounds):
            yield Think(2_000_000 * (2 * i + 1))
            value = yield p.load(bbase)
            yield p.store(bbase, value + 10)

    ctxs = [cluster.start(a, ping), cluster.start(b, pong)]
    cluster.run_programs(ctxs)
    # 3 increments of 1 and 3 of 10 — nothing lost.
    final = vsm.views[vsm.pages[0].owner].local_page[0]
    owner = vsm.pages[0].owner
    value = cluster.node(owner).backend.peek(
        final * cluster.amap.page_bytes
    )
    assert value == 3 * 1 + 3 * 10
    # Ownership migrated back and forth.
    assert vsm.write_faults >= 4
    assert vsm.invalidations >= 3


def test_vsm_data_with_telegraphos_locks():
    """§4: 'Telegraphos builds on top of these approaches' — VSM-managed
    data protected by hardware fetch&add locks, no lost updates even
    with concurrent contenders."""
    cluster = Cluster(n_nodes=3)
    data = cluster.alloc_segment(home=0, pages=1, name="vsmdata")
    sync = cluster.alloc_segment(home=0, pages=1, name="hwlock")
    vsm = VsmManager(cluster, data)
    per_node = 3
    ctxs = []
    for node in (1, 2):
        proc = cluster.create_process(node=node, name=f"p{node}")
        dbase = vsm.map_into(proc)
        lock = SpinLock(proc, proc.map(sync))

        def program(p, dbase=dbase, lock=lock):
            for _ in range(per_node):
                yield from lock.acquire()
                value = yield p.load(dbase)    # may fault: VSM fetch
                yield p.store(dbase, value + 1)  # may fault: invalidate
                yield from lock.release()

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    owner = vsm.pages[0].owner
    local = vsm.views[owner].local_page[0]
    value = cluster.node(owner).backend.peek(
        local * cluster.amap.page_bytes
    )
    assert value == 2 * per_node
