"""Rig extensions for coherence-protocol tests: a sharing directory,
per-node engines, and replica placement."""

import pytest

from repro.coherence import CoherenceChecker, SharingDirectory, make_engine

from tests.hib.conftest import Rig


class CoherenceRig(Rig):
    def __init__(self, n_nodes=4, params=None):
        super().__init__(n_nodes=n_nodes, params=params)
        self.directory = SharingDirectory(self.params.sizing.page_bytes)
        self.engines = {}

    def attach_protocol(self, protocol, cache_entries=32):
        """Install one engine per node."""
        for node in self.nodes:
            engine = make_engine(
                protocol,
                node.node_id,
                self.directory,
                tracer=self.tracer,
                cache_entries=cache_entries,
            )
            node.hib.coherence = engine
            self.engines[node.node_id] = engine
        return self.engines

    def share_page(self, home, gpage, replicas):
        """Create a group homed at (home, gpage) with ``replicas`` as
        {node: local_page}; copies the current home contents."""
        group = self.directory.create_group(home, gpage)
        page_bytes = self.amap.page_bytes
        for node_id, local_page in replicas.items():
            self.directory.add_replica(group, node_id, local_page)
            # The OS copies the page contents at replication time.
            src_backend = self.node(home).backend
            dst_backend = self.node(node_id).backend
            for w in range(0, page_bytes, 4):
                dst_backend.poke(
                    local_page * page_bytes + w,
                    src_backend.peek(gpage * page_bytes + w),
                )
        return group

    def checker(self):
        return CoherenceChecker(self.tracer, self.directory)

    def backends(self):
        return {n.node_id: n.backend for n in self.nodes}


@pytest.fixture
def crig():
    return CoherenceRig(n_nodes=4)
