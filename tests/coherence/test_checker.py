"""Unit tests for the memory-model checker primitives."""

from repro.coherence.checker import contains_aba, is_subsequence


def test_is_subsequence_basics():
    assert is_subsequence([], [1, 2, 3])
    assert is_subsequence([1, 3], [1, 2, 3])
    assert is_subsequence([1, 2, 3], [1, 2, 3])
    assert not is_subsequence([3, 1], [1, 2, 3])
    assert not is_subsequence([1, 4], [1, 2, 3])
    assert not is_subsequence([1], [])


def test_is_subsequence_with_duplicates():
    assert is_subsequence([2, 2], [2, 1, 2])
    assert not is_subsequence([2, 2, 2], [2, 1, 2])


def test_contains_aba_finds_121():
    hit = contains_aba([1, 2, 1])
    assert hit is not None
    value, between, index = hit
    assert value == 1
    assert between == (2,)
    assert index == 2


def test_contains_aba_clean_sequences():
    assert contains_aba([]) is None
    assert contains_aba([1]) is None
    assert contains_aba([1, 2, 3]) is None
    assert contains_aba([1, 1, 2, 2]) is None  # consecutive repeats fine


def test_contains_aba_longer_gap():
    assert contains_aba([5, 7, 9, 5]) is not None


def test_contains_aba_repeated_run_not_flagged():
    # 1,2,2,1 is still A..B..A.
    assert contains_aba([1, 2, 2, 1]) is not None
    # 1,1,1 never flagged.
    assert contains_aba([1, 1, 1]) is None
