"""Unit tests for the sharing directory and the counter cache."""

import pytest

from repro.coherence import CounterCache, SharingDirectory
from repro.sim import Simulator


# -- PageGroup / SharingDirectory -------------------------------------------


def test_group_home_holds_its_own_page():
    directory = SharingDirectory(8192)
    group = directory.create_group(home=1, gpage=3)
    assert group.holds_copy(1)
    assert group.placement[1] == 3
    assert group.sharers == []
    assert group.copy_holders == [1]


def test_replica_placement_and_offsets():
    directory = SharingDirectory(8192)
    group = directory.create_group(home=0, gpage=2)
    directory.add_replica(group, node=1, local_page=7)
    assert group.sharers == [1]
    assert group.local_offset(1, 0x10) == 7 * 8192 + 0x10
    assert group.home_offset(0x10) == 2 * 8192 + 0x10


def test_in_page_bounds_checked():
    directory = SharingDirectory(8192)
    group = directory.create_group(0, 0)
    with pytest.raises(ValueError):
        group.local_offset(0, 8192)


def test_duplicate_group_rejected():
    directory = SharingDirectory(8192)
    directory.create_group(0, 0)
    with pytest.raises(ValueError):
        directory.create_group(0, 0)


def test_duplicate_replica_rejected():
    directory = SharingDirectory(8192)
    group = directory.create_group(0, 0)
    directory.add_replica(group, 1, 5)
    with pytest.raises(ValueError):
        directory.add_replica(group, 1, 6)


def test_local_page_collision_rejected():
    directory = SharingDirectory(8192)
    a = directory.create_group(0, 0)
    b = directory.create_group(0, 1)
    directory.add_replica(a, 1, 5)
    with pytest.raises(ValueError):
        directory.add_replica(b, 1, 5)


def test_lookup_by_local_placement():
    directory = SharingDirectory(8192)
    group = directory.create_group(0, 0)
    directory.add_replica(group, 2, 9)
    assert directory.group_at(2, 9) is group
    assert directory.group_at(0, 0) is group  # the home placement
    assert directory.group_at(2, 8) is None


def test_drop_replica():
    directory = SharingDirectory(8192)
    group = directory.create_group(0, 0)
    directory.add_replica(group, 1, 5)
    directory.drop_replica(group, 1)
    assert not group.holds_copy(1)
    assert directory.group_at(1, 5) is None
    with pytest.raises(ValueError):
        directory.drop_replica(group, 0)  # cannot drop the home copy


def test_groups_listing():
    directory = SharingDirectory(8192)
    directory.create_group(1, 0)
    directory.create_group(0, 0)
    assert [g.key for g in directory.groups()] == [(0, 0), (1, 0)]


# -- CounterCache -------------------------------------------------------------


def run_gen(sim, gen, name="g"):
    return sim.spawn(gen, name=name)


def test_cache_increment_decrement_cycle():
    sim = Simulator()
    cache = CounterCache(entries=4, rmw_ns=10)
    key = (0, 0, 0)

    def body():
        yield from cache.increment(key, sim=sim)
        yield from cache.increment(key, sim=sim)
        assert cache.value(key) == 2
        yield from cache.decrement(key)
        assert cache.value(key) == 1
        yield from cache.decrement(key)
        assert cache.value(key) == 0
        assert cache.used == 0  # entry freed at zero

    proc = run_gen(sim, body())
    sim.run()
    assert proc.done and proc.exception is None
    assert cache.increments == 2


def test_cache_underflow_detected():
    sim = Simulator()
    sim.strict_failures = False
    cache = CounterCache(entries=4, rmw_ns=10)

    def body():
        yield from cache.decrement((0, 0, 0))

    proc = run_gen(sim, body())
    sim.run()
    assert isinstance(proc.exception, RuntimeError)


def test_cache_full_stalls_until_entry_frees():
    sim = Simulator()
    cache = CounterCache(entries=1, rmw_ns=10)
    a, b = (0, 0, 0), (0, 0, 4)
    timeline = {}

    def writer():
        yield from cache.increment(a, sim=sim)
        timeline["a"] = sim.now
        yield from cache.increment(b, sim=sim)  # stalls: cache full
        timeline["b"] = sim.now

    def reflector():
        yield 5_000
        yield from cache.decrement(a)

    run_gen(sim, writer())
    run_gen(sim, reflector())
    sim.run()
    assert timeline["b"] >= 5_000
    assert cache.stalls == 1
    assert cache.stall_ns > 0


def test_cache_resident_key_never_stalls():
    sim = Simulator()
    cache = CounterCache(entries=1, rmw_ns=10)
    key = (0, 0, 0)

    def body():
        yield from cache.increment(key, sim=sim)
        yield from cache.increment(key, sim=sim)  # same key: no stall

    run_gen(sim, body())
    sim.run()
    assert cache.stalls == 0
    assert cache.value(key) == 2


def test_unlimited_cache_never_stalls():
    sim = Simulator()
    cache = CounterCache(entries=None, rmw_ns=10)

    def body():
        for i in range(100):
            yield from cache.increment((0, 0, 4 * i), sim=sim)

    run_gen(sim, body())
    sim.run()
    assert cache.stalls == 0
    assert cache.used == 100
    assert cache.max_used == 100


def test_cache_capacity_validated():
    with pytest.raises(ValueError):
        CounterCache(entries=0, rmw_ns=10)


def test_nonzero_keys_sorted():
    sim = Simulator()
    cache = CounterCache(entries=8, rmw_ns=1)

    def body():
        yield from cache.increment((0, 0, 8), sim=sim)
        yield from cache.increment((0, 0, 0), sim=sim)

    run_gen(sim, body())
    sim.run()
    assert cache.nonzero_keys() == [(0, 0, 0), (0, 0, 8)]
