"""Edge paths of the coherence engines: updates to non-holders,
multi-writer Galactica, base-engine behaviour, factory validation."""

import pytest

from repro.coherence import make_engine, PROTOCOLS, SharingDirectory
from repro.machine import Store

from tests.coherence.conftest import CoherenceRig

HOME = 0
REPLICAS = {1: 16, 2: 17, 3: 18}


def test_factory_rejects_unknown_protocol():
    directory = SharingDirectory(8192)
    with pytest.raises(ValueError, match="unknown protocol"):
        make_engine("mesi", 0, directory)


def test_factory_builds_every_listed_protocol():
    directory = SharingDirectory(8192)
    for protocol in PROTOCOLS:
        engine = make_engine(protocol, 0, directory)
        assert engine is not None


def test_protocol_names_exposed():
    directory = SharingDirectory(8192)
    names = {make_engine(p, 0, directory).protocol_name for p in PROTOCOLS}
    assert names == {
        "none", "eager", "owner-stale", "owner-local", "telegraphos",
        "galactica",
    }


def test_base_engine_local_store_stays_local():
    """protocol='none': a store to a registered shared page applies
    locally and propagates nowhere."""
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol("none")
    rig.share_page(HOME, 0, {1: 16})
    space = rig.space(1)
    base = rig.map_mpm(space, vpage=0, local_page=16)

    def prog():
        yield Store(base, 9)

    ctx = rig.run_on(1, prog(), space)
    rig.run_all(ctx)
    page = rig.amap.page_bytes
    assert rig.node(1).backend.peek(16 * page) == 9
    assert rig.node(0).backend.peek(0) == 0  # home untouched
    assert rig.engines[1].stats["updates_sent"] == 0


def test_eager_update_for_dropped_replica_is_ignored():
    """An UPDATE racing a replica drop must not corrupt anything."""
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol("eager")
    group = rig.share_page(HOME, 0, {1: 16, 2: 17})
    space = rig.space(1)
    base = rig.map_mpm(space, vpage=0, local_page=16)

    # Drop node 2's replica just before the update arrives there.
    def prog():
        yield Store(base, 4)

    ctx = rig.run_on(1, prog(), space)
    rig.sim.run(max_events=50)  # the store has been issued...
    rig.directory.drop_replica(group, 2)
    rig.run_all(ctx)
    # Node 2's engine ignored the stray update.
    assert rig.engines[2].stats["updates_ignored"] >= 0
    assert rig.node(0).backend.peek(0) == 4  # home still updated


def test_galactica_three_writers_converge():
    rig = CoherenceRig(n_nodes=4)
    rig.attach_protocol("galactica")
    rig.share_page(HOME, 0, REPLICAS)
    ctxs = []
    for node, value in ((1, 11), (2, 22), (3, 33)):
        space = rig.space(node)
        base = rig.map_mpm(space, vpage=0, local_page=REPLICAS[node])

        def prog(base=base, value=value):
            yield Store(base, value)

        ctxs.append(rig.run_on(node, prog(), space))
    rig.run_all(*ctxs)
    assert not rig.checker().divergent_words(rig.backends(), words_per_page=1)
    # The highest-priority writer's value (lowest node id) wins.
    assert rig.node(0).backend.peek(0) == 11


def test_galactica_sequential_writes_no_backoff():
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol("galactica")
    rig.share_page(HOME, 0, {1: 16, 2: 17})
    from repro.machine import Think

    space1 = rig.space(1)
    base1 = rig.map_mpm(space1, vpage=0, local_page=16)
    space2 = rig.space(2)
    base2 = rig.map_mpm(space2, vpage=0, local_page=17)

    def first():
        yield Store(base1, 1)

    def second():
        yield Think(200_000)  # well after the first settles
        yield Store(base2, 2)

    ctxs = [rig.run_on(1, first(), space1), rig.run_on(2, second(), space2)]
    rig.run_all(*ctxs)
    assert not rig.checker().divergent_words(rig.backends(), words_per_page=1)
    assert rig.node(0).backend.peek(0) == 2  # last write wins
    assert all(e.backoffs == 0 for e in rig.engines.values())


def test_owner_engine_rejects_misrouted_owner_update():
    """An owner-bound UPDATE arriving at a non-owner is a protocol
    error and must not be absorbed silently."""
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol("telegraphos")
    rig.share_page(HOME, 0, {1: 16, 2: 17})
    rig.sim.strict_failures = False
    from repro.network.packet import Packet, PacketKind

    pkt = Packet(
        PacketKind.UPDATE, src=1, dst=2, size_bytes=16, address=0, value=5,
        origin=1,
        meta={"home": HOME, "gpage": 0, "in_page": 0, "to_owner": True},
    )

    def inject():
        yield rig.fabric.port(1).send(pkt)

    rig.sim.spawn(inject())
    rig.sim.run()
    assert rig.sim.failures
