"""Property-based tests for the Galactica ring baseline: whatever the
conflict timing, the back-off protocol must converge (that is [15]'s
guarantee — the §2.4 criticism is only about *transient* validity)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Store, Think

from tests.coherence.conftest import CoherenceRig

HOME = 0
REPLICAS = {1: 16, 2: 17, 3: 18}


@given(
    delays=st.tuples(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
    ),
    writers=st.sets(st.sampled_from([1, 2, 3]), min_size=2, max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_property_galactica_always_converges(delays, writers):
    rig = CoherenceRig(n_nodes=4)
    rig.attach_protocol("galactica")
    rig.share_page(HOME, 0, REPLICAS)
    ctxs = []
    for i, node in enumerate(sorted(writers)):
        space = rig.space(node)
        base = rig.map_mpm(space, vpage=0, local_page=REPLICAS[node])
        delay = delays[i % len(delays)] * 500

        def program(base=base, node=node, delay=delay):
            if delay:
                yield Think(delay)
            yield Store(base, node * 111)

        ctxs.append(rig.run_on(node, program(), space))
    rig.run_all(*ctxs)
    assert not rig.checker().divergent_words(rig.backends(), words_per_page=1)
    # Everything in flight drained.
    for node in rig.nodes:
        assert node.hib.outstanding.count == 0
    for engine in rig.engines.values():
        assert not engine._in_flight


@given(
    rounds=st.integers(min_value=1, max_value=4),
    gap_ns=st.integers(min_value=0, max_value=3) .map(lambda k: k * 40_000),
)
@settings(max_examples=10, deadline=None)
def test_property_galactica_spaced_writes_are_clean(rounds, gap_ns):
    """Non-overlapping writes never trigger back-offs and the last
    writer's value wins everywhere."""
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol("galactica")
    rig.share_page(HOME, 0, {1: 16, 2: 17})
    last_value = {}
    ctxs = []
    for node in (1, 2):
        space = rig.space(node)
        base = rig.map_mpm(space, vpage=0, local_page={1: 16, 2: 17}[node])

        def program(base=base, node=node):
            for r in range(rounds):
                # Strictly alternating, widely spaced writes.
                yield Think(200_000 + r * 400_000 + node * 200_000 + gap_ns)
                yield Store(base, node * 10 + r)

        last_value[node] = node * 10 + rounds - 1
        ctxs.append(rig.run_on(node, program(), space))
    rig.run_all(*ctxs)
    assert not rig.checker().divergent_words(rig.backends(), words_per_page=1)
    assert all(e.backoffs == 0 for e in rig.engines.values())
