"""Property-based tests of the §2.3.3 protocol guarantees.

Hypothesis generates arbitrary unsynchronized write schedules (which
nodes write which values to which words, with what spacing); the
counter protocol must *always* satisfy:

1. the subsequence property — every node's copy takes a subsequence
   of the values the owner's copy takes, per location;
2. convergence — all copies equal the home copy at quiescence;
3. accounting — pending counters and outstanding-op counters drain to
   zero, and the counter-cache RMW count equals the forwarded-write
   count.

The same machinery shows the owner-local baseline *violating* (1) on
at least some generated schedules — the checker has teeth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.coherence.conftest import CoherenceRig

HOME = 0
REPLICAS = {1: 16, 2: 17, 3: 18}

# A write action: (writer node, word index 0-3, think time before).
write_action = st.tuples(
    st.sampled_from(sorted(REPLICAS)),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3) .map(lambda k: k * 700),
)


def run_schedule(protocol, schedule, cache_entries=32):
    rig = CoherenceRig(n_nodes=4)
    rig.attach_protocol(protocol, cache_entries=cache_entries)
    rig.share_page(HOME, 0, REPLICAS)
    per_node = {}
    for seq, (node, word, delay) in enumerate(schedule):
        per_node.setdefault(node, []).append((word, 1000 + seq, delay))
    ctxs = []
    for node, actions in per_node.items():
        space = rig.space(node)
        base = rig.map_mpm(space, vpage=0, local_page=REPLICAS[node])

        def program(actions=actions, base=base):
            from repro.machine import Store, Think

            for word, value, delay in actions:
                if delay:
                    yield Think(delay)
                yield Store(base + 4 * word, value)

        ctxs.append(rig.run_on(node, program(), space))
    rig.run_all(*ctxs)
    return rig


@given(schedule=st.lists(write_action, min_size=1, max_size=14))
@settings(max_examples=25, deadline=None)
def test_property_counter_protocol_always_consistent(schedule):
    rig = run_schedule("telegraphos", schedule)
    checker = rig.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(rig.backends(), words_per_page=4)
    for node, engine in rig.engines.items():
        if hasattr(engine, "counters"):
            assert engine.counters.used == 0, f"node {node} counters leaked"
        assert rig.node(node).hib.outstanding.count == 0


@given(schedule=st.lists(write_action, min_size=1, max_size=10))
@settings(max_examples=15, deadline=None)
def test_property_tiny_counter_cache_still_consistent(schedule):
    """§2.3.4: a 1-entry cache may stall but never corrupts."""
    rig = run_schedule("telegraphos", schedule, cache_entries=1)
    checker = rig.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(rig.backends(), words_per_page=4)


@given(schedule=st.lists(write_action, min_size=1, max_size=14))
@settings(max_examples=15, deadline=None)
def test_property_owner_protocols_always_converge(schedule):
    """Even the flawed §2.3.2 variants converge (their failure is
    transient ordering, not final state)."""
    for protocol in ("owner-stale", "owner-local"):
        rig = run_schedule(protocol, schedule)
        assert not rig.checker().divergent_words(
            rig.backends(), words_per_page=4
        )


@given(schedule=st.lists(write_action, min_size=1, max_size=10))
@settings(max_examples=15, deadline=None)
def test_property_counter_rmw_accounting(schedule):
    """Counter increments == forwarded writes (writes by non-owners),
    the paper's overhead claim."""
    rig = run_schedule("telegraphos", schedule)
    forwarded = sum(
        engine.stats["local_stores"] for engine in rig.engines.values()
    )
    increments = sum(
        engine.counters.increments
        for engine in rig.engines.values()
        if hasattr(engine, "counters")
    )
    # All writers here are non-owners, so every local store forwards.
    assert increments == forwarded == len(schedule)


def test_checker_catches_owner_local_on_adversarial_schedule():
    """A back-to-back double write by one node is exactly the §2.3.2
    counterexample; the checker must flag owner-local on it."""
    schedule = [(1, 0, 0), (1, 0, 0)]
    rig = run_schedule("owner-local", schedule)
    assert rig.checker().subsequence_violations()
