"""Integration tests of the coherence engines on a live 4-node rig.

The progression mirrors the paper: eager multicast diverges (Fig. 2);
owner serialization converges but has the §2.3.2 read anomalies; the
counter protocol is correct; Galactica converges but shows "1,2,1".
"""

import pytest

from repro.machine import Fence, Load, Store, Think

from tests.coherence.conftest import CoherenceRig


HOME = 0
GPAGE = 0
REPLICAS = {1: 16, 2: 17, 3: 18}


def setup_shared(crig, protocol, cache_entries=32):
    crig.attach_protocol(protocol, cache_entries=cache_entries)
    group = crig.share_page(HOME, GPAGE, REPLICAS)
    return group


def writer_space(crig, node):
    """Map the node's copy of the shared page at vpage 0."""
    space = crig.space(node)
    local_page = GPAGE if node == HOME else REPLICAS[node]
    base = crig.map_mpm(space, vpage=0, local_page=local_page)
    return space, base


def concurrent_writers(crig, writes_by_node, think_ns=0):
    """Run one program per node issuing the given (offset, value)
    stores; returns contexts."""
    ctxs = []
    for node, writes in writes_by_node.items():
        space, base = writer_space(crig, node)

        def prog(writes=writes, base=base):
            if think_ns:
                yield Think(think_ns)
            for offset, value in writes:
                yield Store(base + offset, value)

        ctxs.append(crig.run_on(node, prog(), space))
    return ctxs


# ---------------------------------------------------------------------------
# Eager multicast (Figure 2)
# ---------------------------------------------------------------------------


def test_eager_single_producer_propagates(crig):
    setup_shared(crig, "eager")
    ctxs = concurrent_writers(crig, {1: [(0x0, 42)]})
    crig.run_all(*ctxs)
    page = crig.amap.page_bytes
    assert crig.node(0).backend.peek(0) == 42
    assert crig.node(2).backend.peek(17 * page) == 42
    assert crig.node(3).backend.peek(18 * page) == 42
    assert not crig.checker().divergent_words(crig.backends(), words_per_page=4)


def test_eager_concurrent_writers_diverge(crig):
    """Figure 2: two simultaneous writers to the same word; with no
    serialization point the copies end with different values."""
    setup_shared(crig, "eager")
    ctxs = concurrent_writers(crig, {1: [(0x0, 111)], 2: [(0x0, 222)]})
    crig.run_all(*ctxs)
    divergent = crig.checker().divergent_words(crig.backends(), words_per_page=1)
    assert divergent, "eager multicast should have diverged (Figure 2)"
    # Writer 1 last applied its own 222->111? No: each writer applies
    # its own value first, then the other's arrives: they swap.
    page = crig.amap.page_bytes
    assert crig.node(1).backend.peek(16 * page) == 222
    assert crig.node(2).backend.peek(17 * page) == 111


def test_eager_violates_subsequence_property(crig):
    setup_shared(crig, "eager")
    ctxs = concurrent_writers(crig, {1: [(0x0, 111)], 2: [(0x0, 222)]})
    crig.run_all(*ctxs)
    assert crig.checker().subsequence_violations()


# ---------------------------------------------------------------------------
# Owner serialization (§2.3.1)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", ["owner-stale", "owner-local", "telegraphos"])
def test_owner_based_protocols_converge(crig, protocol):
    setup_shared(crig, protocol)
    ctxs = concurrent_writers(
        crig, {1: [(0x0, 111)], 2: [(0x0, 222)], 3: [(0x0, 333)]}
    )
    crig.run_all(*ctxs)
    assert not crig.checker().divergent_words(crig.backends(), words_per_page=1)


def test_owner_stale_read_own_write_returns_old_value(crig):
    """§2.3.2 problem 1: without local apply, P reads M right after
    writing M=1 and gets the old value 0."""
    setup_shared(crig, "owner-stale")
    space, base = writer_space(crig, 1)
    got = []

    def prog():
        yield Store(base, 1)
        got.append((yield Load(base)))  # immediately read back

    ctx = crig.run_on(1, prog(), space)
    crig.run_all(ctx)
    assert got == [0], "stale read: the write had not been reflected yet"
    # Eventually the reflection lands and the copy is correct.
    page = crig.amap.page_bytes
    assert crig.node(1).backend.peek(16 * page) == 1


def test_telegraphos_read_own_write_returns_new_value(crig):
    setup_shared(crig, "telegraphos")
    space, base = writer_space(crig, 1)
    got = []

    def prog():
        yield Store(base, 1)
        got.append((yield Load(base)))

    ctx = crig.run_on(1, prog(), space)
    crig.run_all(ctx)
    assert got == [1]


def test_owner_local_exhibits_stale_overwrite_window(crig):
    """§2.3.2 problem 2: P writes M=2 then M=3; the reflected 2 later
    overwrites the newer 3 (visible as an A-B-A on P's copy)."""
    setup_shared(crig, "owner-local")
    ctxs = concurrent_writers(crig, {1: [(0x0, 2), (0x0, 3)]})
    crig.run_all(*ctxs)
    checker = crig.checker()
    key = (HOME, GPAGE, 0)
    seq = checker.applied_values(1, key)
    # Local 2, local 3, reflected 2 (the bug), reflected 3.
    assert seq == [2, 3, 2, 3]
    from repro.coherence.checker import contains_aba

    assert contains_aba(seq) is not None
    assert checker.subsequence_violations()


def test_counter_protocol_fixes_stale_overwrite(crig):
    """§2.3.3: same scenario, rules 2+3 ignore exactly the reflections
    of P's own pending writes — the copy never goes backwards."""
    setup_shared(crig, "telegraphos")
    ctxs = concurrent_writers(crig, {1: [(0x0, 2), (0x0, 3)]})
    crig.run_all(*ctxs)
    checker = crig.checker()
    seq = checker.applied_values(1, (HOME, GPAGE, 0))
    assert seq == [2, 3]
    from repro.coherence.checker import contains_aba

    assert contains_aba(seq) is None
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(crig.backends(), words_per_page=1)


def test_counter_protocol_subsequence_property_under_contention(crig):
    """Rules 2 and 3 guarantee every node sees a subsequence of the
    owner's order, even with many concurrent writers and words."""
    setup_shared(crig, "telegraphos")
    writes = {
        1: [(0x0, 10), (0x4, 11), (0x0, 12)],
        2: [(0x0, 20), (0x4, 21)],
        3: [(0x4, 30), (0x0, 31), (0x4, 32)],
    }
    ctxs = concurrent_writers(crig, writes)
    crig.run_all(*ctxs)
    checker = crig.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(crig.backends(), words_per_page=2)


def test_counter_protocol_pending_counters_drain_to_zero(crig):
    setup_shared(crig, "telegraphos")
    ctxs = concurrent_writers(crig, {1: [(0x0, 1), (0x0, 2), (0x4, 3)]})
    crig.run_all(*ctxs)
    engine = crig.engines[1]
    assert engine.counters.used == 0
    assert crig.node(1).hib.outstanding.count == 0


def test_counter_cache_of_one_entry_stalls_but_stays_correct(crig):
    """§2.3.4: a tiny cache stalls the processor on overflow; the
    protocol stays correct."""
    setup_shared(crig, "telegraphos", cache_entries=1)
    writes = {1: [(4 * i, 100 + i) for i in range(6)]}
    ctxs = concurrent_writers(crig, writes)
    crig.run_all(*ctxs)
    engine = crig.engines[1]
    assert engine.counters.stalls > 0
    checker = crig.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(crig.backends(), words_per_page=6)


def test_counter_cache_32_entries_never_stalls_here(crig):
    setup_shared(crig, "telegraphos", cache_entries=32)
    writes = {1: [(4 * i, 100 + i) for i in range(6)]}
    ctxs = concurrent_writers(crig, writes)
    crig.run_all(*ctxs)
    assert crig.engines[1].counters.stalls == 0


def test_owner_write_by_owner_reflects_to_sharers(crig):
    setup_shared(crig, "telegraphos")
    ctxs = concurrent_writers(crig, {HOME: [(0x8, 77)]})
    crig.run_all(*ctxs)
    page = crig.amap.page_bytes
    for node, local_page in REPLICAS.items():
        assert crig.node(node).backend.peek(local_page * page + 0x8) == 77


def test_direct_remote_write_to_owned_page_reflects(crig):
    """A node *without* a copy writes through its remote window; the
    owner reflects the write to all sharers."""
    crig2 = CoherenceRig(n_nodes=5)
    crig2.attach_protocol("telegraphos")
    crig2.share_page(HOME, GPAGE, REPLICAS)
    space = crig2.space(4)
    base = crig2.map_remote(space, vpage=0, home=HOME, remote_page=GPAGE)

    def prog():
        yield Store(base + 0xC, 55)
        yield Fence()

    ctx = crig2.run_on(4, prog(), space)
    crig2.run_all(ctx)
    page = crig2.amap.page_bytes
    assert crig2.node(0).backend.peek(0xC) == 55
    for node, local_page in REPLICAS.items():
        assert crig2.node(node).backend.peek(local_page * page + 0xC) == 55


# ---------------------------------------------------------------------------
# Galactica ring (§2.4)
# ---------------------------------------------------------------------------


def galactica_conflict(crig):
    """Writers at ring positions 1 and 3, observer at 2 (between them
    in ring order), home 0.  Near-simultaneous conflicting writes."""
    setup_shared(crig, "galactica")
    return concurrent_writers(crig, {1: [(0x0, 111)], 3: [(0x0, 333)]})


def test_galactica_converges_after_backoff(crig):
    ctxs = galactica_conflict(crig)
    crig.run_all(*ctxs)
    assert not crig.checker().divergent_words(crig.backends(), words_per_page=1)
    # The lower-priority writer (node 3) backed off; winner value 111.
    assert crig.node(0).backend.peek(0) == 111
    assert crig.engines[3].backoffs == 1
    assert crig.engines[1].backoffs == 0


def test_galactica_observer_sees_invalid_121_sequence(crig):
    """§2.4: 'it is possible that a third processor sees the sequence
    "1,2,1" which is a sequence that is not a valid program sequence
    under any memory consistency model.'"""
    ctxs = galactica_conflict(crig)
    crig.run_all(*ctxs)
    checker = crig.checker()
    observations = checker.aba_observations(observer=2)
    assert observations, "the observer should have seen winner,loser,winner"
    key, (value, between, _) = observations[0]
    assert value == 111
    assert 333 in between


def test_telegraphos_never_shows_121_in_same_scenario(crig):
    """The paper's protocol 'makes sure that both processors read "1",
    or "2", or "1,2", or "2,1" ... but no processor ever reads
    "1,2,1".'"""
    setup_shared(crig, "telegraphos")
    ctxs = concurrent_writers(crig, {1: [(0x0, 111)], 3: [(0x0, 333)]})
    crig.run_all(*ctxs)
    checker = crig.checker()
    for observer in range(4):
        assert not checker.aba_observations(observer)
    assert not checker.subsequence_violations()


def test_galactica_single_writer_simple_propagation(crig):
    setup_shared(crig, "galactica")
    ctxs = concurrent_writers(crig, {2: [(0x0, 5)]})
    crig.run_all(*ctxs)
    assert not crig.checker().divergent_words(crig.backends(), words_per_page=1)
    assert crig.node(0).backend.peek(0) == 5
