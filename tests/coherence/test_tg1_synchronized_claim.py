"""The §2.3.4 Telegraphos I claim.

"In our first prototype, Telegraphos I, we have not implemented this
cache ...  Parallel applications that have at least one
synchronization operation between two concurrent writes will run on
top of Telegraphos I without a problem.  Unfortunately, applications
that have chaotic accesses may not run correctly."

The no-counter protocol is our ``owner-local`` engine.  These tests
check both halves: with a fence (the synchronization the paper
demands) between conflicting writes, owner-local stays consistent;
with chaotic back-to-back writes it does not — and the counter
protocol handles the chaotic case.
"""

from repro.machine import Fence, Store

from tests.coherence.conftest import CoherenceRig

HOME = 0
REPLICAS = {1: 16, 2: 17}


def run_two_writes(protocol, synchronized):
    """Node 1 writes the same word twice; synchronized inserts the
    §2.3.4 synchronization (a fence completes the first write's
    reflection) between them."""
    rig = CoherenceRig(n_nodes=3)
    rig.attach_protocol(protocol)
    rig.share_page(HOME, 0, REPLICAS)
    space = rig.space(1)
    base = rig.map_mpm(space, vpage=0, local_page=REPLICAS[1])

    def program():
        yield Store(base, 2)
        if synchronized:
            yield Fence()
        yield Store(base, 3)

    ctx = rig.run_on(1, program(), space)
    rig.run_all(ctx)
    checker = rig.checker()
    return {
        "violations": checker.subsequence_violations(),
        "sequence": checker.applied_values(1, (HOME, 0, 0)),
        "divergent": checker.divergent_words(rig.backends(), words_per_page=1),
    }


def test_owner_local_with_synchronization_is_correct():
    """The paper's positive claim for Telegraphos I."""
    result = run_two_writes("owner-local", synchronized=True)
    assert not result["violations"]
    assert not result["divergent"]
    # The fence drained the first write's reflection before the
    # second write, so the copy never went backwards.
    assert result["sequence"] == [2, 2, 3, 3]


def test_owner_local_chaotic_misbehaves():
    """The paper's negative claim: chaotic (unsynchronized) writes
    'may not run correctly' without the counters."""
    result = run_two_writes("owner-local", synchronized=False)
    assert result["violations"]
    assert result["sequence"] == [2, 3, 2, 3]


def test_counter_protocol_handles_chaotic_without_synchronization():
    """The future-version fix: the counter cache makes the chaotic
    case safe with no synchronization at all."""
    result = run_two_writes("telegraphos", synchronized=False)
    assert not result["violations"]
    assert not result["divergent"]
    assert result["sequence"] == [2, 3]


def test_synchronization_cost_vs_counter_cost():
    """The §2.3.4 trade-off is real: forcing synchronization between
    chaotic writes costs a fence round trip per write; the counter
    protocol costs only a CAM access."""

    def makespan(protocol, synchronized):
        rig = CoherenceRig(n_nodes=3)
        rig.attach_protocol(protocol)
        rig.share_page(HOME, 0, REPLICAS)
        space = rig.space(1)
        base = rig.map_mpm(space, vpage=0, local_page=REPLICAS[1])

        def program():
            for i in range(10):
                yield Store(base, i)
                if synchronized:
                    yield Fence()

        ctx = rig.run_on(1, program(), space)
        start = rig.sim.now
        rig.sim.run_until_done([ctx.process])
        return rig.sim.now - start

    synced = makespan("owner-local", synchronized=True)
    countered = makespan("telegraphos", synchronized=False)
    assert countered < synced / 2
