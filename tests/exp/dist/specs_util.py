"""Synthetic experiment specs for the distributed-executor tests.

Everything is module-level so specs survive pickling under any
``multiprocessing`` start method, and every run function is a pure
function of its arguments (the determinism contract) — except where a
test *wants* side-channel observability (invocation-count marker
files) or controlled blocking/crashing, which stay out of the result
payload so the bytes remain pure.
"""

import os
import time

from repro.exp import ExperimentSpec


def render_noop(result):
    return str(result)


def run_value(value=0):
    return {"value": value, "square": value * value}


def run_counted(value=0, count_path=""):
    """Pure result, impure breadcrumb: append one byte per invocation
    so tests can assert how many times the measurement actually ran."""
    if count_path:
        with open(count_path, "a", encoding="utf-8") as handle:
            handle.write("x")
    return {"value": value}


def run_block_until(release_path="", value=0):
    """Park until ``release_path`` exists — the knob that lets a test
    freeze a worker mid-experiment and kill it deterministically."""
    while not os.path.exists(release_path):
        time.sleep(0.02)
    return {"value": value}


def run_always_raises():
    raise ValueError("synthetic experiment defect")


def run_exits(code=13):
    os._exit(code)


def make_spec(exp_id, run, params=None, cost=1.0, version=1):
    return ExperimentSpec(
        exp_id=exp_id,
        title=f"synthetic {exp_id}",
        bench="synthetic.py",
        run=run,
        render=render_noop,
        params=params or {},
        cost=cost,
        version=version,
    )


def value_specs(n):
    return [
        make_spec(f"V{i}", run_value, params={"value": i}, cost=1.0 + i % 3)
        for i in range(n)
    ]
