"""End-to-end distributed sweeps: byte-identity with the serial
runner, lease-expiry reclaim after a worker is killed mid-experiment,
resume of an interrupted sweep, gather verification, and failure
provenance."""

import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.exp import ResultCache, run_spool_sweep, run_sweep
from repro.exp.dist import Spool, SpoolMismatchError, SpoolWorker, worker_entry

from tests.exp.dist.specs_util import (
    make_spec,
    run_always_raises,
    run_block_until,
    run_counted,
    run_exits,
    value_specs,
)

CONTEXT = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def wait_for(predicate, timeout_s=30.0, poll_s=0.02, message="condition"):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(poll_s)
    raise AssertionError(f"timed out waiting for {message}")


# -- byte identity ---------------------------------------------------------


def test_spool_sweep_is_byte_identical_to_serial(tmp_path):
    """The acceptance contract: ``--executor spool`` with three
    workers writes the same ``results/`` bytes as ``--workers 1``."""
    specs = value_specs(7)
    serial = run_sweep(specs, workers=1,
                       cache=ResultCache(str(tmp_path / "serial")))
    dist = run_spool_sweep(
        specs, str(tmp_path / "spool"),
        cache=ResultCache(str(tmp_path / "dist")),
        workers=3, shards=3, poll_s=0.05, timeout_s=120,
    )
    assert serial.ok and dist.ok
    assert sorted(serial.ran) == sorted(dist.ran)
    for spec in specs:
        name = f"{spec.exp_id}.json"
        assert (tmp_path / "serial" / name).read_bytes() \
            == (tmp_path / "dist" / name).read_bytes()
    shard_counts = dist.stats["dist"]["exp.dist.shards"]
    assert shard_counts["state=published"] == 3
    assert shard_counts["state=done"] == 3


def test_spool_sweep_serves_coordinator_cache(tmp_path):
    specs = value_specs(3)
    cache = ResultCache(str(tmp_path / "results"))
    first = run_spool_sweep(specs, str(tmp_path / "spool"), cache=cache,
                            workers=1, poll_s=0.05, timeout_s=120)
    assert first.ok and sorted(first.ran) == ["V0", "V1", "V2"]
    # Warm second sweep: all cached, the spool is never consulted
    # (a fresh spool dir would otherwise raise on the mismatch).
    second = run_spool_sweep(specs, str(tmp_path / "never-created"),
                             cache=cache, workers=1, timeout_s=120)
    assert second.ok and second.ran == []
    assert sorted(second.cached) == ["V0", "V1", "V2"]
    assert not os.path.exists(str(tmp_path / "never-created"))


# -- lease expiry + contention --------------------------------------------


def test_killed_worker_is_reclaimed_and_finished_by_a_second_worker(tmp_path):
    """Crash tolerance end to end: worker A is SIGKILLed mid-experiment
    (no chance to clean up), its lease expires, the coordinator
    republishes the shard, and worker B completes the sweep."""
    release = tmp_path / "release.flag"
    specs = [make_spec("BLOCK", run_block_until,
                       params={"release_path": str(release), "value": 7})]
    spool_dir = str(tmp_path / "spool")
    spool = Spool(spool_dir)

    worker_a = CONTEXT.Process(
        target=worker_entry, args=(spool_dir, specs),
        kwargs={"worker_id": "wA", "poll_s": 0.05},
    )
    worker_a.start()

    outcome = {}

    def coordinate():
        outcome["result"] = run_spool_sweep(
            specs, spool_dir, cache=ResultCache(str(tmp_path / "results")),
            workers=0, shards=1, lease_s=1.0, max_claims=3,
            poll_s=0.05, timeout_s=120,
        )

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    try:
        # Wait until worker A owns the shard and is inside the
        # experiment (the lease file appears right after the claim).
        wait_for(lambda: _lease_owner(spool) == "wA",
                 message="worker A to claim the shard")
        os.kill(worker_a.pid, signal.SIGKILL)
        worker_a.join()

        # Unblock the experiment for whoever runs it next, then bring
        # in the rescuer.
        release.write_text("go")
        worker_b = CONTEXT.Process(
            target=worker_entry, args=(spool_dir, specs),
            kwargs={"worker_id": "wB", "poll_s": 0.05},
        )
        worker_b.start()
        coordinator.join(timeout=120)
        assert not coordinator.is_alive()
        worker_b.join(timeout=60)
    finally:
        if worker_a.is_alive():
            worker_a.kill()
        coordinator.join(timeout=5)

    result = outcome["result"]
    assert result.ok, [f.to_dict() for f in result.failures]
    assert result.ran == ["BLOCK"]
    assert result.documents["BLOCK"]["result"] == {"value": 7}
    shard_counts = result.stats["dist"]["exp.dist.shards"]
    assert shard_counts.get("state=reclaimed", 0) >= 1
    # The rescuer's provenance manifest names it as the finisher.
    history = spool.provenance_for_shard("S00")
    assert any(m["worker"] == "wB" and m.get("completed") for m in history)


def _lease_owner(spool):
    leases_dir = spool.dir("leases")
    try:
        names = os.listdir(leases_dir)
    except OSError:
        return None
    from repro.exp.dist import read_lease

    for name in names:
        lease = read_lease(os.path.join(leases_dir, name))
        if lease is not None:
            return lease.owner
    return None


def test_contending_workers_produce_exactly_one_owner_per_shard(tmp_path):
    """Four workers, one shard: the rename admits a single claimant,
    everyone else stays idle, and exactly one provenance manifest
    exists."""
    specs = [make_spec("ONLY", run_counted,
                       params={"value": 3,
                               "count_path": str(tmp_path / "count")})]
    spool_dir = str(tmp_path / "spool")
    workers = [
        CONTEXT.Process(target=worker_entry, args=(spool_dir, specs),
                        kwargs={"worker_id": f"w{i}", "poll_s": 0.02})
        for i in range(4)
    ]
    for process in workers:
        process.start()
    result = run_spool_sweep(
        specs, spool_dir, cache=ResultCache(str(tmp_path / "results")),
        workers=0, shards=1, poll_s=0.05, timeout_s=120,
    )
    for process in workers:
        process.join(timeout=60)
    assert result.ok and result.ran == ["ONLY"]
    # Exactly one worker ran the measurement...
    assert (tmp_path / "count").read_text() == "x"
    # ... and exactly one attempt manifest exists for the shard.
    history = Spool(spool_dir).provenance_for_shard("S00")
    assert len(history) == 1 and history[0]["completed"]


# -- resume ----------------------------------------------------------------


def test_resumed_sweep_reuses_deposits_and_skips_cached_shards(tmp_path):
    """Interrupt a sweep after one of two shards finished; the resumed
    sweep must recompute only the unfinished shard."""
    count_a, count_b = str(tmp_path / "a.count"), str(tmp_path / "b.count")
    specs = [
        make_spec("A", run_counted, params={"value": 1,
                                            "count_path": count_a},
                  cost=2.0),
        make_spec("B", run_counted, params={"value": 2,
                                            "count_path": count_b},
                  cost=1.0),
    ]
    spool_dir = str(tmp_path / "spool")
    cache = ResultCache(str(tmp_path / "results"))

    # Phase 1: coordinator publishes both shards but no worker shows
    # up in time — the sweep "crashes" (times out) unresolved.
    interrupted = run_spool_sweep(
        specs, spool_dir, cache=cache, workers=0, shards=2,
        poll_s=0.05, timeout_s=0.3,
    )
    assert not interrupted.ok
    assert interrupted.stats["timed_out"]
    assert Spool(spool_dir).is_complete() is False

    # A lone worker drains exactly one shard (the LPT-heavier A) and
    # stops, as if its host rebooted before claiming more.
    worker = SpoolWorker(spool_dir, specs, worker_id="half", poll_s=0.02,
                         max_shards=1, startup_timeout_s=10)
    worker.run()
    assert os.path.exists(count_a) and not os.path.exists(count_b)

    # Phase 2: resume against the same spool with a live worker.
    resumed = run_spool_sweep(
        specs, spool_dir, cache=cache, workers=1, shards=2,
        poll_s=0.05, timeout_s=120,
    )
    assert resumed.ok, [f.to_dict() for f in resumed.failures]
    assert sorted(resumed.ran) == ["A", "B"]
    # A was gathered from its deposit, not recomputed.
    assert (tmp_path / "a.count").read_text() == "x"
    assert (tmp_path / "b.count").read_text() == "x"

    # Phase 3: a warm re-sweep is all cache, no spool involvement.
    warm = run_spool_sweep(specs, spool_dir, cache=cache, workers=0,
                           timeout_s=120)
    assert warm.ok and warm.ran == [] and sorted(warm.cached) == ["A", "B"]
    assert (tmp_path / "a.count").read_text() == "x"


def test_spool_refuses_a_different_sweep(tmp_path):
    spool_dir = str(tmp_path / "spool")
    first = run_spool_sweep(
        value_specs(2), spool_dir,
        cache=ResultCache(str(tmp_path / "r1")),
        workers=1, poll_s=0.05, timeout_s=120,
    )
    assert first.ok
    with pytest.raises(SpoolMismatchError):
        run_spool_sweep(
            [make_spec("OTHER", run_counted)], spool_dir,
            cache=ResultCache(str(tmp_path / "r2")),
            workers=0, timeout_s=5,
        )


# -- gather verification + failure provenance ------------------------------


def test_gather_rejects_non_canonical_deposits(tmp_path):
    """A deposit whose bytes do not re-serialize from the
    coordinator's spec (code skew, torn write) is refused, not
    silently gathered."""
    spec = make_spec("V", run_counted, params={"value": 9})
    spool_dir = str(tmp_path / "spool")
    cache = ResultCache(str(tmp_path / "results"))
    # Publish, then have a worker complete the shard...
    run_spool_sweep([spec], spool_dir, cache=cache, workers=1,
                    poll_s=0.05, timeout_s=120)
    spool = Spool(spool_dir)
    # ... and corrupt the deposit with non-canonical (but valid-JSON,
    # right-cache-key) bytes, as a skewed worker would write.
    import json

    document = spool.load_result("V")
    spool.deposit_result(
        "V", (json.dumps(document) + "\n").encode("utf-8"))
    # Resume-gather with an empty coordinator cache: the deposit is
    # the only source, and it must fail verification.
    tampered = run_spool_sweep(
        [spec], spool_dir, cache=ResultCache(str(tmp_path / "results2")),
        workers=0, poll_s=0.05, timeout_s=5,
    )
    assert not tampered.ok
    (failure,) = tampered.failures
    assert "verification" in failure.error
    assert tampered.stats["dist"]["exp.dist.experiments"][
        "outcome=verify_failed"] == 1
    assert not os.path.exists(os.path.join(str(tmp_path / "results2"),
                                           "V.json"))


def test_raising_experiment_degrades_with_traceback_and_host(tmp_path):
    specs = [make_spec("OK", run_counted, params={"value": 1}),
             make_spec("BAD", run_always_raises)]
    result = run_spool_sweep(
        specs, str(tmp_path / "spool"),
        cache=ResultCache(str(tmp_path / "results")),
        workers=1, shards=1, poll_s=0.05, timeout_s=120,
    )
    assert not result.ok
    assert result.ran == ["OK"]
    (failure,) = result.failures
    assert failure.experiment == "BAD"
    assert failure.attempts == 2  # first run + one in-worker retry
    assert "synthetic experiment defect" in failure.error
    assert failure.host == socket.gethostname()


def test_hard_dying_experiment_reports_exitcode_in_provenance(tmp_path):
    specs = [make_spec("DIE", run_exits, params={"code": 13})]
    spool_dir = str(tmp_path / "spool")
    result = run_spool_sweep(
        specs, spool_dir, cache=ResultCache(str(tmp_path / "results")),
        workers=1, poll_s=0.05, timeout_s=120,
    )
    assert not result.ok
    (failure,) = result.failures
    assert "exitcode 13" in failure.error
    assert failure.host == socket.gethostname()
    # The provenance manifest carries every attempt, not just the last.
    history = Spool(spool_dir).provenance_for_shard("S00")
    (manifest,) = history
    (record,) = manifest["experiments"]
    assert [a["status"] for a in record["attempts"]] == ["died", "died"]


def test_worker_refuses_skewed_cache_keys(tmp_path):
    """A worker whose local spec version differs from the descriptor's
    cache key must not compute under the wrong key."""
    spec_v1 = make_spec("V", run_counted, params={"value": 1}, version=1)
    spec_v2 = make_spec("V", run_counted, params={"value": 1}, version=2)
    spool_dir = str(tmp_path / "spool")

    def coordinate():
        return run_spool_sweep(
            [spec_v1], spool_dir,
            cache=ResultCache(str(tmp_path / "results")),
            workers=0, poll_s=0.05, timeout_s=15,
        )

    # The skewed worker claims the shard but refuses the experiment.
    thread_result = {}
    coordinator = threading.Thread(
        target=lambda: thread_result.update(result=coordinate()))
    coordinator.start()
    worker = SpoolWorker(spool_dir, [spec_v2], worker_id="skewed",
                         poll_s=0.02, max_shards=1, startup_timeout_s=10)
    worker.run()
    coordinator.join()
    result = thread_result["result"]
    assert not result.ok
    (failure,) = result.failures
    assert "cache key mismatch" in failure.error
