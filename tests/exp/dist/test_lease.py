"""Lease mechanics under an injected clock: acquisition, renewal
cadence, ownership loss, and the coordinator's expiry rules."""

import os

from repro.exp.dist import (
    LeaseFile,
    claim_shard,
    lease_expired,
    read_lease,
)

from tests.exp.dist.test_spool_claim import make_desc, make_spool


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def claimed(tmp_path):
    spool = make_spool(tmp_path)
    desc = make_desc()  # lease_s = 5.0
    spool.publish(desc)
    assert claim_shard(spool, desc)
    return spool, desc


def test_acquire_writes_expiry_and_identity(tmp_path):
    spool, desc = claimed(tmp_path)
    clock = FakeClock()
    lease = LeaseFile(spool, desc, "w1", clock=clock)
    lease.acquire()
    stored = read_lease(spool.lease_path(desc))
    assert stored is not None
    assert stored.owner == "w1" and stored.attempt == 1
    assert stored.expires == clock.now + desc.lease_s
    assert stored.renewals == 0


def test_renewal_cadence_and_count(tmp_path):
    spool, desc = claimed(tmp_path)
    clock = FakeClock()
    lease = LeaseFile(spool, desc, "w1", clock=clock)
    lease.acquire()
    # Not due yet: no rewrite, still renewal 0.
    clock.advance(desc.lease_s / 10)
    assert lease.maybe_renew()
    assert read_lease(spool.lease_path(desc)).renewals == 0
    # Past a third of the window: renewed, expiry pushed out.
    clock.advance(desc.lease_s)
    assert lease.maybe_renew()
    stored = read_lease(spool.lease_path(desc))
    assert stored.renewals == 1
    assert stored.expires == clock.now + desc.lease_s


def test_renewal_detects_ownership_loss(tmp_path):
    spool, desc = claimed(tmp_path)
    clock = FakeClock()
    lease = LeaseFile(spool, desc, "w1", clock=clock)
    lease.acquire()
    # The coordinator reclaimed us: lease now names another worker.
    LeaseFile(spool, desc, "thief", clock=clock).acquire()
    clock.advance(desc.lease_s)
    assert not lease.maybe_renew()
    # ... or the lease file vanished outright.
    os.unlink(spool.lease_path(desc))
    assert not lease.maybe_renew()


def test_expiry_follows_the_lease_clock(tmp_path):
    spool, desc = claimed(tmp_path)
    clock = FakeClock()
    LeaseFile(spool, desc, "w1", clock=clock).acquire()
    assert not lease_expired(spool, desc, now=clock.now)
    assert not lease_expired(spool, desc, now=clock.now + desc.lease_s - 0.1)
    assert lease_expired(spool, desc, now=clock.now + desc.lease_s + 0.1)


def test_missing_lease_expires_via_running_mtime(tmp_path):
    """A claimant that died between its winning rename and its first
    lease write is still detected — the running file's age bounds the
    claim."""
    spool, desc = claimed(tmp_path)
    claimed_at = os.stat(spool.running_path(desc)).st_mtime
    assert not lease_expired(spool, desc, now=claimed_at + 1.0)
    assert lease_expired(spool, desc, now=claimed_at + desc.lease_s + 1.0)


def test_vanished_running_file_is_not_expired(tmp_path):
    spool, desc = claimed(tmp_path)
    os.unlink(spool.running_path(desc))
    assert not lease_expired(spool, desc, now=1e18)


def test_release_removes_the_lease(tmp_path):
    spool, desc = claimed(tmp_path)
    lease = LeaseFile(spool, desc, "w1")
    lease.acquire()
    lease.release()
    assert read_lease(spool.lease_path(desc)) is None
    lease.release()  # idempotent
