"""The spool's claim protocol: atomic rename exclusivity, generation
fencing, and requeue/retire semantics."""

import os
import threading

from repro.exp.dist import (
    ShardDescriptor,
    Spool,
    claim_shard,
    finish_shard,
    requeue_shard,
    retire_shard,
    sweep_identity,
)


def make_desc(shard="S00", attempt=1, exps=(("V0", "k0"), ("V1", "k1"))):
    return ShardDescriptor(
        shard=shard, sweep="deadbeef", attempt=attempt, max_claims=3,
        retries=1, lease_s=5.0, experiments=tuple(exps),
    )


def make_spool(tmp_path):
    spool = Spool(str(tmp_path / "spool"))
    spool.ensure_layout()
    return spool


def test_descriptor_round_trip():
    desc = make_desc()
    clone = ShardDescriptor.from_dict(desc.to_dict())
    assert clone == desc
    assert clone.file_name == "S00.a1.json"
    assert desc.with_attempt(2).file_name == "S00.a2.json"
    assert desc.exp_ids() == ["V0", "V1"]


def test_publish_and_list_round_trip(tmp_path):
    spool = make_spool(tmp_path)
    descs = [make_desc(f"S{i:02d}") for i in (2, 0, 1)]
    for desc in descs:
        spool.publish(desc)
    listed = spool.list_todo()
    assert [d.shard for d in listed] == ["S00", "S01", "S02"]
    assert all(d == make_desc(d.shard) for d in listed)
    assert spool.list_running() == [] and spool.list_done() == []


def test_exactly_one_racer_claims(tmp_path):
    """The heart of the protocol: N concurrent claimants, one winner."""
    spool = make_spool(tmp_path)
    desc = make_desc()
    spool.publish(desc)
    outcomes = [None] * 16
    barrier = threading.Barrier(len(outcomes))

    def racer(index):
        barrier.wait()
        outcomes[index] = claim_shard(spool, desc)

    threads = [threading.Thread(target=racer, args=(i,))
               for i in range(len(outcomes))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert outcomes.count(True) == 1
    assert spool.list_todo() == []
    assert [d.shard for d in spool.list_running()] == ["S00"]


def test_finish_moves_running_to_done(tmp_path):
    spool = make_spool(tmp_path)
    desc = make_desc()
    spool.publish(desc)
    assert claim_shard(spool, desc)
    assert finish_shard(spool, desc)
    assert spool.list_running() == []
    assert [d.shard for d in spool.list_done()] == ["S00"]
    # Double-finish (or a fenced zombie) fails instead of raising.
    assert not finish_shard(spool, desc)


def test_requeue_bumps_attempt_and_fences_the_zombie(tmp_path):
    spool = make_spool(tmp_path)
    desc = make_desc()
    spool.publish(desc)
    assert claim_shard(spool, desc)

    successor = requeue_shard(spool, desc)
    assert successor is not None and successor.attempt == 2
    assert [d.attempt for d in spool.list_todo()] == [2]
    # The zombie claimant of generation 1 can no longer finish: its
    # generation was renamed away, and generation 2 lives at a
    # different path entirely.
    assert not finish_shard(spool, desc)
    # The new generation claims and finishes normally.
    assert claim_shard(spool, successor)
    assert finish_shard(spool, successor)
    assert [d.attempt for d in spool.list_done()] == [2]


def test_requeue_of_finished_shard_is_a_noop(tmp_path):
    spool = make_spool(tmp_path)
    desc = make_desc()
    spool.publish(desc)
    assert claim_shard(spool, desc)
    assert finish_shard(spool, desc)
    assert requeue_shard(spool, desc) is None
    assert spool.list_todo() == []


def test_retire_removes_without_republish(tmp_path):
    spool = make_spool(tmp_path)
    desc = make_desc()
    spool.publish(desc)
    assert claim_shard(spool, desc)
    assert retire_shard(spool, desc)
    assert spool.list_todo() == [] and spool.list_running() == []
    assert not os.path.exists(spool.lease_path(desc))
    assert not retire_shard(spool, desc)


def test_result_deposit_is_atomic_and_idempotent(tmp_path):
    spool = make_spool(tmp_path)
    payload = b'{"cache_key": "k", "result": 1}\n'
    spool.deposit_result("V0", payload)
    spool.deposit_result("V0", payload)  # racing generation, same bytes
    with open(spool.result_path("V0"), "rb") as handle:
        assert handle.read() == payload
    assert spool.load_result("V0") == {"cache_key": "k", "result": 1}
    assert spool.load_result("MISSING") is None


def test_provenance_history_is_per_attempt(tmp_path):
    spool = make_spool(tmp_path)
    first, second = make_desc(), make_desc(attempt=2)
    spool.write_provenance(first, {"worker": "a", "attempt": 1})
    spool.write_provenance(second, {"worker": "b", "attempt": 2})
    history = spool.provenance_for_shard("S00")
    assert [m["worker"] for m in history] == ["a", "b"]
    assert spool.provenance_for_shard("S99") == []


def test_sweep_identity_is_order_insensitive_and_key_sensitive():
    pairs = [("A", "k1"), ("B", "k2")]
    assert sweep_identity(pairs) == sweep_identity(list(reversed(pairs)))
    assert sweep_identity(pairs) != sweep_identity([("A", "k1"), ("B", "k3")])


def test_complete_marker_lifecycle(tmp_path):
    spool = make_spool(tmp_path)
    assert not spool.is_complete()
    spool.mark_complete()
    assert spool.is_complete()
    spool.clear_complete()
    assert not spool.is_complete()
