"""SSH fan-out: command construction, and the full remote path driven
through a local ssh stand-in (the launcher is a dumb typist — all
correctness lives in the spool protocol it launches into)."""

import os
import shlex
import stat

from repro.exp import ResultCache
from repro.exp.dist import SSHLauncher, run_spool_sweep
from repro.exp.registry import default_registry, select

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", ".."))


def test_remote_command_shape():
    launcher = SSHLauncher(
        ["nodeA", "nodeB"], "/mnt/shared/spool", cwd="/srv/repo",
        python="/usr/bin/python3.12",
    )
    command = launcher.command_for("nodeB", 1)
    assert command[:4] == ["ssh", "-o", "BatchMode=yes", "nodeB"]
    remote = command[4]
    assert remote.startswith("cd /srv/repo && PYTHONPATH=src ")
    assert "--executor spool" in remote
    assert "--worker" in remote
    assert "--spool-dir /mnt/shared/spool" in remote
    assert "--worker-id nodeB.1" in remote
    assert "/usr/bin/python3.12 -m repro sweep" in remote


def test_remote_command_quotes_hostile_paths():
    launcher = SSHLauncher(
        ["n0"], "/tmp/spool dir", cwd="/srv/my repo", python="python3")
    remote = launcher.remote_command("n0", 0)
    # One level of shell evaluation (what ssh provides) must round-trip
    # both space-laden paths intact.
    tokens = shlex.split(remote)
    assert "/srv/my repo" in tokens
    assert "/tmp/spool dir" in tokens


def test_launcher_runs_a_real_sweep_through_fake_ssh(tmp_path):
    """End-to-end over the launcher: a fake ``ssh`` that executes the
    remote command locally, a real registry experiment, and a
    byte-compare against the committed serial result."""
    fake_ssh = tmp_path / "fake-ssh"
    fake_ssh.write_text('#!/bin/sh\n# drop the hostname, run "remotely"\n'
                        'shift\nexec sh -c "$1"\n')
    fake_ssh.chmod(fake_ssh.stat().st_mode | stat.S_IXUSR)

    specs = select(default_registry(), ["T1"])
    launcher = SSHLauncher(
        ["clusternode"], str(tmp_path / "spool"),
        cwd=REPO_ROOT, python="python3", ssh_cmd=(str(fake_ssh),),
    )
    outcome = run_spool_sweep(
        specs, str(tmp_path / "spool"),
        cache=ResultCache(str(tmp_path / "results")),
        workers=0, poll_s=0.1, timeout_s=300, launcher=launcher,
    )
    assert outcome.ok, [f.to_dict() for f in outcome.failures]
    assert outcome.ran == ["T1"]
    with open(os.path.join(REPO_ROOT, "results", "T1.json"), "rb") as handle:
        committed = handle.read()
    with open(tmp_path / "results" / "T1.json", "rb") as handle:
        assert handle.read() == committed
    # The launcher reaped its worker.
    assert launcher.procs == []
