"""The grid expander: deterministic expansion, per-point cache
isolation, float-safe cache keys, and executor byte-identity on a
two-parameter grid."""

import pytest

from repro.exp import GridSpec, ResultCache, run_spool_sweep, run_sweep
from repro.exp.grid import expand_grids, family_points, format_axis_value
from repro.exp.spec import canonical_key_material


def run_nothing(**params):
    return dict(params)


def render_nothing(result):
    return str(result)


def make_grid(**overrides):
    kwargs = dict(
        family="G",
        title="test grid",
        bench="benchmarks/bench_table2_latency.py",
        run=run_nothing,
        render=render_nothing,
        axes={"alpha": [1, 2], "beta": [0.5, 0.25]},
        base={"fixed": 7},
    )
    kwargs.update(overrides)
    return GridSpec(**kwargs)


# -- expansion -------------------------------------------------------------


def test_expansion_order_is_deterministic_cartesian():
    """Declared axis order, last axis fastest — and stable across
    calls (shard assignment and results paths depend on it)."""
    grid = make_grid()
    ids = [spec.exp_id for spec in grid.expand()]
    assert ids == [
        "G/alpha=1,beta=0.5",
        "G/alpha=1,beta=0.25",
        "G/alpha=2,beta=0.5",
        "G/alpha=2,beta=0.25",
    ]
    assert ids == [spec.exp_id for spec in grid.expand()]
    assert grid.n_points == 4


def test_points_inherit_family_metadata_and_merge_params():
    grid = make_grid(caveat="per-point note", version=3, cost=0.4)
    point = grid.expand()[1]
    assert point.is_grid_point
    assert point.family == "G"
    assert point.params == {"fixed": 7, "alpha": 1, "beta": 0.25}
    assert point.caveat == "per-point note"
    assert point.version == 3
    assert point.cost == 0.4
    assert point.bench == grid.bench


def test_grid_validation_rejects_bad_declarations():
    with pytest.raises(ValueError, match="no axes"):
        make_grid(axes={})
    with pytest.raises(ValueError, match="no values"):
        make_grid(axes={"alpha": []})
    with pytest.raises(ValueError, match="shadows"):
        make_grid(axes={"fixed": [1, 2]})
    with pytest.raises(ValueError, match="'/'"):
        make_grid(family="G/sub")
    with pytest.raises(ValueError, match="duplicate grid families"):
        expand_grids([make_grid(), make_grid()])


def test_family_points_subsets_in_expansion_order():
    specs = expand_grids([make_grid()])
    assert [s.exp_id for s in family_points(specs, "G")] \
        == [s.exp_id for s in make_grid().expand()]
    assert family_points(specs, "NOPE") == []


def test_axis_value_formatting():
    assert format_axis_value(200) == "200"
    assert format_axis_value(0.98) == "0.98"
    assert format_axis_value("replica") == "replica"
    assert format_axis_value(True) == "true"
    assert format_axis_value(None) == "none"


# -- cache keys ------------------------------------------------------------


def test_per_point_cache_keys_are_isolated():
    """Every point gets its own key; bumping the family version
    invalidates all of them and none of a sibling family's."""
    keys = {s.exp_id: s.cache_key() for s in make_grid().expand()}
    assert len(set(keys.values())) == len(keys)
    bumped = {s.exp_id: s.cache_key()
              for s in make_grid(version=2).expand()}
    assert set(bumped) == set(keys)
    assert all(bumped[exp_id] != keys[exp_id] for exp_id in keys)


def test_per_point_cache_hit_miss_isolation(tmp_path):
    """Recomputing one point leaves sibling entries warm; changing an
    axis value misses without touching the others."""
    grid = make_grid()
    cache = ResultCache(str(tmp_path))
    points = grid.expand()
    for point in points:
        cache.store(point, point.run(**point.params))
    assert all(cache.lookup(point) is not None for point in points)
    # A new value on one axis is a fresh point: cache miss for it,
    # hits for every committed sibling.
    grown = make_grid(axes={"alpha": [1, 2, 3], "beta": [0.5, 0.25]})
    fresh = [p for p in grown.expand() if p.params["alpha"] == 3]
    warm = [p for p in grown.expand() if p.params["alpha"] != 3]
    assert all(cache.lookup(point) is None for point in fresh)
    assert all(cache.lookup(point) is not None for point in warm)


def test_float_axis_values_key_stably_and_distinctly():
    """The canonicalization satellite: equal doubles hash equally
    however they were written; int 1 and float 1.0 do not alias; junk
    is rejected."""
    assert canonical_key_material(0.1) \
        == canonical_key_material(0.1000000000000000055511151231257827)
    assert canonical_key_material(1) != canonical_key_material(1.0)
    assert canonical_key_material((1, 2)) == canonical_key_material([1, 2])
    with pytest.raises(ValueError, match="non-finite"):
        canonical_key_material(float("nan"))
    with pytest.raises(ValueError, match="keys must be str"):
        canonical_key_material({1: "x"})
    with pytest.raises(ValueError, match="not JSON-safe"):
        canonical_key_material(object())
    # Identity on the pre-grid param trees: historical keys unchanged.
    tree = {"ops": 10_000, "mode": "replica", "flags": [True, None]}
    assert canonical_key_material(tree) == tree


def test_grid_point_results_land_in_family_subdirectory(tmp_path):
    grid = make_grid()
    cache = ResultCache(str(tmp_path))
    point = grid.expand()[0]
    cache.store(point, point.run(**point.params))
    assert (tmp_path / "G" / "alpha=1,beta=0.5.json").is_file()
    assert cache.lookup(point) is not None


# -- executor byte-identity ------------------------------------------------


def test_w1_grid_byte_identical_across_executors(tmp_path):
    """The acceptance contract on a real two-parameter grid: the W1
    family (sharing × rounds_per_node) produces byte-identical point
    files under ``--workers 1``, ``--workers 3``, and the spool
    executor."""
    from repro.exp import default_grids

    (grid,) = [g for g in default_grids() if g.family == "W1"]
    specs = grid.expand()
    serial = run_sweep(specs, workers=1,
                       cache=ResultCache(str(tmp_path / "serial")))
    parallel = run_sweep(specs, workers=3,
                         cache=ResultCache(str(tmp_path / "parallel")))
    spool = run_spool_sweep(
        specs, str(tmp_path / "spool"),
        cache=ResultCache(str(tmp_path / "dist")),
        workers=2, shards=2, poll_s=0.05, timeout_s=120,
    )
    assert serial.ok and parallel.ok and spool.ok
    assert sorted(serial.ran) == sorted(parallel.ran) \
        == sorted(spool.ran) == sorted(s.exp_id for s in specs)
    for spec in specs:
        name = f"{spec.exp_id}.json"
        reference = (tmp_path / "serial" / name).read_bytes()
        assert (tmp_path / "parallel" / name).read_bytes() == reference
        assert (tmp_path / "dist" / name).read_bytes() == reference
