"""The experiment registry: completeness against the benchmark
suite, and freshness of the committed results cache."""

from pathlib import Path

import pytest

from repro.exp import (
    ResultCache,
    default_grids,
    default_registry,
    flat_specs,
    select,
    spec_map,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_IDS = [
    "T1", "T2", "C1", "F2", "S1", "S2", "S3", "S4",
    "S5", "S6", "S7", "S8", "A3", "A1", "A2", "X1", "X2",
]

EXPECTED_FAMILIES = ["T2", "S3", "X1", "W1", "W2", "A2"]


def test_registry_is_complete_and_unique():
    specs = default_registry()
    assert [spec.exp_id for spec in specs if not spec.is_grid_point] \
        == EXPECTED_IDS
    assert [spec.exp_id for spec in flat_specs()] == EXPECTED_IDS
    assert len(spec_map(specs)) == len(specs)


def test_grid_families_are_declared_and_expanded():
    grids = default_grids()
    assert [grid.family for grid in grids] == EXPECTED_FAMILIES
    points = [spec for spec in default_registry() if spec.is_grid_point]
    # Every family expands to >= 4 points, registered after the flat
    # claims in declaration order.
    by_family = {}
    for point in points:
        by_family.setdefault(point.family, []).append(point)
    assert sorted(by_family) == sorted(EXPECTED_FAMILIES)
    for grid in grids:
        assert len(by_family[grid.family]) == grid.n_points
        assert grid.n_points >= 4
        assert [p.exp_id for p in by_family[grid.family]] \
            == [p.exp_id for p in grid.expand()]


def test_every_spec_has_its_bench_harness():
    registered = {spec.bench for spec in default_registry()}
    registered |= {grid.bench for grid in default_grids()}
    for bench in registered:
        assert (REPO_ROOT / bench).is_file(), bench
    # ...and every experiment-shaped bench file is registered (the
    # perf suite under benchmarks/perf is a separate harness).
    on_disk = {
        f"benchmarks/{p.name}"
        for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    }
    assert on_disk == registered


def test_specs_declare_valid_metadata():
    for spec in default_registry():
        assert spec.title
        assert spec.cost > 0
        assert spec.version >= 1
        # Params must round-trip through the cache key (JSON-safe).
        spec.cache_key()


def test_committed_results_match_current_spec_versions():
    """The staleness gate: every committed results/<id>.json must carry
    the cache key of the *current* spec — grid points included.  A spec
    change without a version bump + re-sweep fails here."""
    cache = ResultCache(str(REPO_ROOT / "results"))
    for spec in default_registry():
        document = cache.lookup(spec)
        assert document is not None, (
            f"results/{spec.exp_id}.json is missing or stale — run "
            f"`python -m repro sweep` and commit the result"
        )
        assert document["experiment"] == spec.exp_id
        assert document["provenance"] == spec.provenance


def test_select_filters_and_validates():
    specs = default_registry()
    assert [s.exp_id for s in select(specs, ["t2", "T1"])] == ["T1", "T2"]
    with pytest.raises(KeyError, match="Z9"):
        select(specs, ["Z9"])


def test_select_supports_family_globs():
    specs = default_registry()
    t2_points = [s.exp_id for s in select(specs, ["T2/*"])]
    assert t2_points == [
        "T2/link_prop_ns=50", "T2/link_prop_ns=200",
        "T2/link_prop_ns=800", "T2/link_prop_ns=3200",
    ]
    # Bare family id selects only the flat claim, not the points.
    assert [s.exp_id for s in select(specs, ["T2"])] == ["T2"]
    # Globs are case-insensitive like plain ids, and a pattern that
    # matches nothing fails loudly.
    assert [s.exp_id for s in select(specs, ["w1/*"])] \
        == [s.exp_id for s in select(specs, ["W1/*"])]
    with pytest.raises(KeyError, match="Z9"):
        select(specs, ["Z9/*"])
