"""The experiment registry: completeness against the benchmark
suite, and freshness of the committed results cache."""

from pathlib import Path

import pytest

from repro.exp import ResultCache, default_registry, select, spec_map

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_IDS = [
    "T1", "T2", "C1", "F2", "S1", "S2", "S3", "S4",
    "S5", "S6", "S7", "S8", "A3", "A1", "A2", "X1", "X2",
]


def test_registry_is_complete_and_unique():
    specs = default_registry()
    assert [spec.exp_id for spec in specs] == EXPECTED_IDS
    assert len(spec_map(specs)) == len(specs)


def test_every_spec_has_its_bench_harness():
    registered = {spec.bench for spec in default_registry()}
    for bench in registered:
        assert (REPO_ROOT / bench).is_file(), bench
    # ...and every experiment-shaped bench file is registered (the
    # perf suite under benchmarks/perf is a separate harness).
    on_disk = {
        f"benchmarks/{p.name}"
        for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    }
    assert on_disk == registered


def test_specs_declare_valid_metadata():
    for spec in default_registry():
        assert spec.title
        assert spec.cost > 0
        assert spec.version >= 1
        # Params must round-trip through the cache key (JSON-safe).
        spec.cache_key()


def test_committed_results_match_current_spec_versions():
    """The staleness gate: every committed results/<id>.json must carry
    the cache key of the *current* spec.  A spec change without a
    version bump + re-sweep fails here."""
    cache = ResultCache(str(REPO_ROOT / "results"))
    for spec in default_registry():
        document = cache.lookup(spec)
        assert document is not None, (
            f"results/{spec.exp_id}.json is missing or stale — run "
            f"`python -m repro sweep` and commit the result"
        )
        assert document["experiment"] == spec.exp_id
        assert document["provenance"] == spec.provenance


def test_select_filters_and_validates():
    specs = default_registry()
    assert [s.exp_id for s in select(specs, ["t2", "T1"])] == ["T1", "T2"]
    with pytest.raises(KeyError, match="Z9"):
        select(specs, ["Z9"])
