"""The sweep orchestrator: deterministic sharding, byte-identical
parallel results, and the retry-then-degrade crash protocol."""

import os

import pytest

from repro.exp import (
    ExperimentSpec,
    ResultCache,
    run_sweep,
    shard_assignment,
)


def render_noop(result):
    return str(result)


def run_value(value=0):
    return {"value": value, "square": value * value}


def run_crash_once(flag_path=""):
    # First attempt: die without reporting (simulates OOM-kill /
    # segfault).  The retry, in a fresh process, finds the flag file
    # and completes.
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8") as handle:
            handle.write("died once")
        os._exit(13)
    return {"recovered": True}


def run_always_raises():
    raise ValueError("synthetic experiment defect")


def run_always_exits(code=13):
    os._exit(code)


def make_spec(exp_id, run, params=None, cost=1.0):
    return ExperimentSpec(
        exp_id=exp_id,
        title=f"synthetic {exp_id}",
        bench="synthetic.py",
        run=run,
        render=render_noop,
        params=params or {},
        cost=cost,
    )


def value_specs(n):
    return [
        make_spec(f"V{i}", run_value, params={"value": i}, cost=1.0 + i % 3)
        for i in range(n)
    ]


def test_shard_assignment_is_deterministic_and_covers_everything():
    specs = value_specs(7)
    shards = shard_assignment(specs, 3)
    assert shards == shard_assignment(specs, 3)
    flat = sorted(spec.exp_id for shard in shards for spec in shard)
    assert flat == sorted(spec.exp_id for spec in specs)
    # workers=1 degenerates to one serial shard in LPT order
    # (heaviest first, ties by experiment id).
    assert [s.exp_id for s in shard_assignment(specs, 1)[0]] \
        == ["V2", "V5", "V1", "V4", "V0", "V3", "V6"]


def test_shard_assignment_spreads_heavy_specs():
    heavy = [make_spec(f"H{i}", run_value, cost=10.0) for i in range(3)]
    light = [make_spec(f"L{i}", run_value, cost=0.1) for i in range(6)]
    shards = shard_assignment(heavy + light, 3)
    for shard in shards:
        assert sum(1 for s in shard if s.cost == 10.0) == 1


def test_shard_assignment_rejects_zero_workers():
    with pytest.raises(ValueError):
        shard_assignment(value_specs(2), 0)


def test_parallel_sweep_is_byte_identical_to_serial(tmp_path):
    specs = value_specs(6)
    serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
    serial = run_sweep(specs, workers=1, cache=ResultCache(str(serial_dir)))
    parallel = run_sweep(specs, workers=3,
                         cache=ResultCache(str(parallel_dir)))
    assert serial.ok and parallel.ok
    assert sorted(serial.ran) == sorted(parallel.ran)
    for spec in specs:
        name = f"{spec.exp_id}.json"
        assert (serial_dir / name).read_bytes() \
            == (parallel_dir / name).read_bytes()


def test_sweep_serves_from_cache_and_force_recomputes(tmp_path):
    specs = value_specs(3)
    cache = ResultCache(str(tmp_path))
    first = run_sweep(specs, cache=cache)
    assert sorted(first.ran) == ["V0", "V1", "V2"]
    second = run_sweep(specs, cache=cache)
    assert second.ran == [] and sorted(second.cached) == ["V0", "V1", "V2"]
    assert second.documents == first.documents
    third = run_sweep(specs, cache=cache, force=True)
    assert sorted(third.ran) == ["V0", "V1", "V2"]


def test_worker_crash_is_retried_in_isolation(tmp_path):
    flag = tmp_path / "crash.flag"
    specs = [
        make_spec("OK", run_value, params={"value": 5}),
        make_spec("CRASH", run_crash_once,
                  params={"flag_path": str(flag)}),
    ]
    outcome = run_sweep(specs, workers=2, cache=ResultCache(str(tmp_path)),
                        retries=1)
    # The crash killed its worker mid-shard, yet both experiments
    # completed: OK from the first pass, CRASH from the isolated retry.
    assert outcome.ok
    assert outcome.documents["CRASH"]["result"] == {"recovered": True}
    assert outcome.documents["OK"]["result"]["value"] == 5
    assert flag.exists()


def test_retry_budget_exhaustion_degrades_to_structured_failure(tmp_path):
    specs = [
        make_spec("OK", run_value, params={"value": 1}),
        make_spec("BAD", run_always_raises),
    ]
    outcome = run_sweep(specs, workers=2, cache=ResultCache(str(tmp_path)),
                        retries=1)
    assert not outcome.ok
    assert outcome.ran == ["OK"]
    (failure,) = outcome.failures
    assert failure.experiment == "BAD"
    assert failure.attempts == 2
    assert "synthetic experiment defect" in failure.error
    assert failure.to_dict()["experiment"] == "BAD"
    assert failure.host  # death notices carry the host they died on
    # The failed experiment left no (stale) result file behind.
    assert not (tmp_path / "BAD.json").exists()


def test_dead_worker_failure_reports_exitcode_and_host(tmp_path):
    """A worker that hard-dies on every attempt degrades into a
    structured failure naming the exit code and host — not a bare
    'no result' shrug."""
    import socket

    specs = [make_spec("DIE", run_always_exits, params={"code": 13})]
    outcome = run_sweep(specs, workers=1, cache=ResultCache(str(tmp_path)),
                        retries=1)
    assert not outcome.ok
    (failure,) = outcome.failures
    assert failure.experiment == "DIE"
    assert "exitcode 13" in failure.error
    assert failure.host == socket.gethostname()
    assert failure.to_dict()["host"] == socket.gethostname()
