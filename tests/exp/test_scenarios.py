"""The scenario registry: factory registration, declarative cluster
wiring, and run_scenario determinism."""

import pytest

from repro.exp.scenario import (
    ScenarioSpec,
    collector,
    make_cluster,
    register_workload,
    run_scenario,
    workload_factory,
    workload_names,
)


def test_builtin_workloads_are_registered():
    assert workload_names() == [
        "hotspot", "migratory", "patterns", "producer_consumer", "traces",
    ]
    for name in workload_names():
        assert callable(workload_factory(name))
    for name in ("coherence", "hib"):
        assert callable(collector(name))


def test_unknown_names_raise_with_known_ones():
    with pytest.raises(KeyError, match="hotspot"):
        workload_factory("nope")
    with pytest.raises(KeyError, match="coherence"):
        collector("nope")


def test_reregistration_is_an_error():
    """Scenario specs address factories by name; silently replacing a
    factory would change what a committed spec means."""
    with pytest.raises(ValueError, match="already registered"):
        register_workload("patterns", lambda cluster: None)
    # Re-registering the *same* callable is idempotent (module reload).
    register_workload("patterns", workload_factory("patterns"))


def test_make_cluster_applies_timing_overrides():
    from repro.params import DEFAULT_PARAMS

    cluster = make_cluster(n_nodes=2, timing={"link_prop_ns": 999})
    assert cluster.params.timing.link_prop_ns == 999
    plain = make_cluster(n_nodes=2)
    assert plain.params.timing.link_prop_ns \
        == DEFAULT_PARAMS.timing.link_prop_ns


def test_scenario_spec_round_trips_through_plain_data():
    scenario = ScenarioSpec(
        name="t", workload="migratory",
        cluster={"n_nodes": 3, "protocol": "none"},
        params={"rounds_per_node": 2, "words": 8, "sharing": "remote"},
        collect=("coherence",), description="d",
    )
    assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario


def test_run_scenario_is_deterministic_and_collects():
    scenario = ScenarioSpec(
        name="pc", workload="producer_consumer",
        cluster={"n_nodes": 3, "protocol": "telegraphos"},
        params={"producer_node": 0, "consumer_nodes": [1, 2],
                "batches": 2, "words_per_batch": 8, "sharing": "replica"},
        collect=("coherence", "hib"),
    )
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first == second
    assert first["scenario"] == "pc"
    assert first["workload"] == "producer_consumer"
    assert first["result"]["consumer_read_ns"]["count"] > 0
    assert first["collected"]["coherence"]["updates_sent"] > 0
    assert first["collected"]["hib"]["packets_served"] > 0


def test_run_scenario_overrides_replace_params():
    base = ScenarioSpec(
        name="mig", workload="migratory",
        cluster={"n_nodes": 3, "protocol": "none"},
        params={"rounds_per_node": 2, "words": 4, "sharing": "remote"},
    )
    short = run_scenario(base)
    long = run_scenario(base, rounds_per_node=4)
    assert long["result"]["expected_sum"] > short["result"]["expected_sum"]


def test_patterns_scenario_rejects_unknown_kind():
    scenario = ScenarioSpec(
        name="bad", workload="patterns",
        cluster={"n_nodes": 2, "protocol": "telegraphos"},
        params={"kind": "zigzag", "accesses": 10},
    )
    with pytest.raises(KeyError, match="zigzag"):
        run_scenario(scenario)


def test_traces_scenario_plays_study_traces():
    scenario = ScenarioSpec(
        name="study", workload="traces",
        cluster={"n_nodes": 3, "protocol": "telegraphos"},
        params={"trace": "false_sharing", "refs": 4},
    )
    document = run_scenario(scenario)
    assert document["result"]  # the player returns a result document
    with pytest.raises(KeyError, match="false_sharing"):
        run_scenario(ScenarioSpec(
            name="bad", workload="traces",
            cluster={"n_nodes": 3},
            params={"trace": "nope"},
        ))
