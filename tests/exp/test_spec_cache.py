"""The experiment-spec cache-key contract and the on-disk result
cache (``repro.exp.spec`` / ``repro.exp.cache``)."""

import dataclasses
import json

from repro.exp import (
    SCHEMA_VERSION,
    ExperimentSpec,
    ResultCache,
    canonical_json_bytes,
)


def run_noop():
    return {"value": 1}


def render_noop(result):
    return f"value = {result['value']}"


def make_spec(**overrides):
    fields = dict(
        exp_id="X1",
        title="synthetic",
        bench="bench_x1.py",
        run=run_noop,
        render=render_noop,
        params={"a": 1, "b": [1, 2]},
        cost=0.5,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def test_canonical_json_is_sorted_and_newline_terminated():
    blob = canonical_json_bytes({"b": 1, "a": {"z": 0, "y": None}})
    assert blob.endswith(b"\n")
    assert blob.index(b'"a"') < blob.index(b'"b"')
    assert blob.index(b'"y"') < blob.index(b'"z"')
    # Stable across calls, insensitive to insertion order.
    assert blob == canonical_json_bytes({"a": {"y": None, "z": 0}, "b": 1})


def test_cache_key_is_stable_and_version_sensitive():
    spec = make_spec()
    key = spec.cache_key()
    assert key == make_spec().cache_key()
    assert len(key) == 32
    int(key, 16)  # hex digest
    # Any identity-relevant field change produces a new key...
    assert make_spec(params={"a": 2, "b": [1, 2]}).cache_key() != key
    assert make_spec(version=2).cache_key() != key
    assert make_spec(exp_id="X2").cache_key() != key
    # ...while presentation-only fields do not.
    assert make_spec(title="renamed").cache_key() == key
    assert make_spec(caveat="different note").cache_key() == key
    assert make_spec(cost=9.0).cache_key() == key


def test_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = make_spec()
    assert cache.lookup(spec) is None
    document = cache.store(spec, {"value": 1})
    assert document["experiment"] == "X1"
    assert document["schema"] == SCHEMA_VERSION
    assert document["cache_key"] == spec.cache_key()
    assert cache.lookup(spec) == document
    # The stored bytes are the canonical serialization.
    assert (tmp_path / "X1.json").read_bytes() == canonical_json_bytes(document)


def test_cache_misses_on_version_bump_and_corruption(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = make_spec()
    cache.store(spec, {"value": 1})
    # A spec version bump invalidates the committed result.
    bumped = dataclasses.replace(spec, version=2)
    assert cache.lookup(bumped) is None
    # Corrupt JSON degrades to a miss, not a crash.
    (tmp_path / "X1.json").write_text("{not json", encoding="utf-8")
    assert cache.lookup(spec) is None


def test_documents_are_json_round_trippable(tmp_path):
    cache = ResultCache(str(tmp_path))
    document = cache.store(make_spec(), {"value": 1})
    assert json.loads(canonical_json_bytes(document)) == document
