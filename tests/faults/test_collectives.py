"""Collectives under fault injection: safety and termination.

NIC-resident collectives (:mod:`repro.hib.collectives`) ride the
reliable transport, so over a lossy fabric every barrier round must
still be *safe* — no member is released before every member has
arrived — and must *terminate*: either the round completes, or the
retry protocol degrades to a structured failure
(:class:`NodeUnreachableError` into the blocked program / a reported
node failure), never a silent hang.

Each seed×scenario run does several back-to-back ``all_reduce("sum")``
rounds (a barrier plus a value correctness check in one) recording
per-node arrival and release times; release times are compared against
*every* member's arrival.  ``REPRO_STRESS_ITERS=N`` multiplies the
seed range (CI soak mode).
"""

import os
from collections import defaultdict

from repro.api import Cluster, ClusterConfig
from repro.faults.injector import NodeUnreachableError
from repro.sim import SimulationDeadlock

import pytest

STRESS_ITERS = max(1, int(os.environ.get("REPRO_STRESS_ITERS", "1")))
SEEDS = list(range(1, 1 + 4 * STRESS_ITERS))

N_NODES = 5
ROUNDS = 4

#: (name, fault rates, release mode).  Rates are per link traversal;
#: each round moves ~a dozen collective packets, so every seed sees a
#: handful of faults across its rounds.
SCENARIOS = [
    ("drop-tree", {"drop_rate": 0.04}, "tree"),
    ("stall-tree", {"stall_rate": 0.06}, "tree"),
    ("drop-stall-multicast",
     {"drop_rate": 0.02, "stall_rate": 0.04}, "multicast"),
]

OBSERVED = {"faults": 0}


def run_rounds(seed, rates, release):
    cluster = Cluster(ClusterConfig(
        n_nodes=N_NODES, collectives="nic", trace=False,
        faults=dict(rates, seed=seed),
    ))
    group = cluster.collective_group("g", release=release)
    arrivals = defaultdict(dict)
    releases = defaultdict(dict)
    sums = defaultdict(dict)
    degraded = []
    contexts = []
    for node in range(N_NODES):
        proc = cluster.create_process(node=node, name=f"c{node}")
        collective = group.join(proc)

        def program(p, collective=collective, node=node):
            try:
                for r in range(ROUNDS):
                    arrivals[r][node] = cluster.now
                    total = yield from collective.all_reduce("sum", node + r)
                    releases[r][node] = cluster.now
                    sums[r][node] = total
            except NodeUnreachableError:
                degraded.append(node)

        contexts.append(proc.start(program))
    deadlocked = False
    try:
        cluster.run(join=contexts)
    except SimulationDeadlock:
        deadlocked = True
    return cluster, arrivals, releases, sums, degraded, deadlocked


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,rates,release",
                         SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_collective_rounds_are_safe_and_terminate(name, rates, release, seed):
    cluster, arrivals, releases, sums, degraded, deadlocked = run_rounds(
        seed, rates, release)
    tag = f"(fault seed={seed}, scenario={name})"

    # Safety, unconditionally: any release implies every member had
    # already arrived for that round — a barrier must never open early,
    # no matter what the fault schedule did.
    for r, released in releases.items():
        if not released:
            continue
        assert len(arrivals[r]) == N_NODES, (
            f"round {r} released before every member arrived {tag}")
        assert min(released.values()) >= max(arrivals[r].values()), (
            f"round {r} released at {min(released.values())} before the "
            f"last arrival at {max(arrivals[r].values())} {tag}")
        expected = sum(range(N_NODES)) + N_NODES * r
        for node, total in sums[r].items():
            assert total == expected, (
                f"round {r} node {node} reduced {total} != {expected} {tag}")

    # Termination: either every round completed everywhere, or the
    # degradation was *structured* — a NodeUnreachableError delivered
    # into a blocked program or a reported node failure, never a
    # silent hang.
    failures = cluster.stats()["faults"]["node_failures"]
    if deadlocked:
        assert degraded or failures, (
            f"deadlock without a structured failure report {tag}")
    elif not degraded and not failures:
        for r in range(ROUNDS):
            assert len(releases[r]) == N_NODES, (
                f"round {r} never completed on a recovered fabric {tag}")
    OBSERVED["faults"] += sum(
        cluster.stats()["faults"]["injected"].values())


def test_zz_soak_injected_faults():
    """Runs after the matrix (name-ordered): the rates above must have
    actually injected faults into collective traffic."""
    assert OBSERVED["faults"] > 0
