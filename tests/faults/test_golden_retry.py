"""Golden trace for the retry protocol.

One forced drop of a known request packet must produce *exactly* one
nack, one go-back-N retransmission with the first backoff step, and an
unchanged final memory image — asserted field by field, so any drift
in the protocol's event sequence shows up as a diff against this file.
"""

from repro.api import Cluster, ClusterConfig
from repro.obs import chrome_trace
from repro.params import DEFAULT_PARAMS

N_WRITES = 8


def run(faults=None):
    cluster = Cluster(ClusterConfig(n_nodes=2, protocol="none",
                                    faults=faults))
    seg = cluster.alloc_segment(home=1, pages=1, name="g")
    proc = cluster.create_process(node=0, name="g")
    base = proc.map(seg, mode="remote")

    def program(p):
        for i in range(N_WRITES):
            yield p.store(base + 4 * i, 100 + i)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    cluster.assert_quiescent()
    return cluster


GOLDEN_FAULTS = {"seed": 1, "drop_exact": [["host0->sw.req", 2]]}


def test_single_drop_produces_one_nack_one_retransmission():
    clean = run()
    cluster = run(GOLDEN_FAULTS)
    assert (tuple(cluster.nodes[1].backend.memory.written_words())
            == tuple(clean.nodes[1].backend.memory.written_words()))

    # Exactly one injected drop: the second traversal of host0's
    # request link, which carries WRITE_REQ seq=1.
    drops = cluster.tracer.select("fault_drop")
    assert len(drops) == 1
    assert drops[0].site == "host0->sw.req"
    assert drops[0].kind == "WRITE_REQ"
    assert (drops[0].src, drops[0].dst, drops[0].seq) == (0, 1, 1)

    # The home sees seq=2 while expecting seq=1 and nacks once.
    nacks = cluster.tracer.select("nack")
    assert len(nacks) == 1
    assert nacks[0].node == 1
    assert (nacks[0].expected, nacks[0].got) == (1, 2)
    assert nacks[0].plane == "req"

    # One recovery: first retry, first backoff step, and go-back-N
    # resends the whole open window from the lost packet on.
    retransmits = cluster.tracer.select("retransmit")
    assert len(retransmits) == 1
    event = retransmits[0]
    assert event.node == 0
    assert event.dst == 1
    assert event.reason == "nack"
    assert event.retry == 1
    assert event.backoff_ns == DEFAULT_PARAMS.timing.retry_backoff_ns
    assert event.from_seq == 1
    assert event.count == N_WRITES - 1

    metrics = cluster.stats()["metrics"]
    assert metrics["hib.retransmits"]["node=0"] == N_WRITES - 1
    assert metrics["hib.nacks_sent"]["node=1"] == 1
    assert metrics["hib.nacks_received"]["node=0"] == 1
    assert metrics["hib.timeouts"]["node=0"] == 0
    # The whole backoff histogram is this one observation.
    backoff = metrics["hib.backoff_ns"]["node=0"]
    assert backoff["count"] == 1
    assert backoff["max"] == DEFAULT_PARAMS.timing.retry_backoff_ns


def test_retry_events_appear_in_the_chrome_trace():
    doc = chrome_trace(run(GOLDEN_FAULTS))
    instants = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "i"}
    assert {"fault_drop", "nack", "retransmit"} <= instants
    retransmit = next(e for e in doc["traceEvents"]
                      if e.get("ph") == "i" and e["name"] == "retransmit")
    assert retransmit["pid"] == 0
    assert retransmit["args"]["reason"] == "nack"
    assert retransmit["args"]["backoff_ns"] == (
        DEFAULT_PARAMS.timing.retry_backoff_ns
    )
