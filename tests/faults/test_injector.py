"""Unit tests for the deterministic fault schedule and injector."""

import pytest

from repro.faults import (
    CATEGORIES,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    decision_fraction,
)
from repro.network.packet import Packet, PacketKind
from repro.sim import Simulator, Tracer


def make_packet(src=0, dst=1):
    return Packet(PacketKind.WRITE_REQ, src=src, dst=dst, size_bytes=16)


# -- the decision function ----------------------------------------------------


def test_decision_fraction_is_pure_and_in_range():
    a = decision_fraction(7, "drop", "host0->sw.req", 3)
    b = decision_fraction(7, "drop", "host0->sw.req", 3)
    assert a == b
    assert 0.0 <= a < 1.0


def test_decision_fraction_varies_with_every_coordinate():
    base = decision_fraction(7, "drop", "host0->sw.req", 3)
    assert base != decision_fraction(8, "drop", "host0->sw.req", 3)
    assert base != decision_fraction(7, "corrupt", "host0->sw.req", 3)
    assert base != decision_fraction(7, "drop", "host1->sw.req", 3)
    assert base != decision_fraction(7, "drop", "host0->sw.req", 4)


def test_decision_fraction_is_roughly_uniform():
    n = 4000
    fractions = [decision_fraction(1, "drop", "site", i) for i in range(n)]
    mean = sum(fractions) / n
    assert abs(mean - 0.5) < 0.03
    assert sum(1 for f in fractions if f < 0.1) / n == pytest.approx(0.1, abs=0.03)


# -- the plan -----------------------------------------------------------------


def test_same_seed_same_decision_sequence():
    config = FaultConfig(seed=11, drop_rate=0.2, corrupt_rate=0.1)
    first = [FaultPlan(config).decide("linkA").kind for _ in range(1)]
    plan_a, plan_b = FaultPlan(config), FaultPlan(config)
    seq_a = [plan_a.decide("linkA").kind for _ in range(200)]
    seq_b = [plan_b.decide("linkA").kind for _ in range(200)]
    assert seq_a == seq_b
    assert "drop" in seq_a  # at 20% over 200 draws the seed must hit


def test_different_seeds_differ():
    seq = lambda seed: [
        FaultPlan(FaultConfig(seed=seed, drop_rate=0.2)).decide("l").kind
        for _ in range(200)
    ]
    assert seq(1) != seq(2)


def test_decisions_are_per_site_independent():
    config = FaultConfig(seed=3, drop_rate=0.3)
    plan = FaultPlan(config)
    interleaved = [(plan.decide("a").kind, plan.decide("b").kind)
                   for _ in range(100)]
    plan_a, plan_b = FaultPlan(config), FaultPlan(config)
    assert [x[0] for x in interleaved] == [plan_a.decide("a").kind
                                           for _ in range(100)]
    assert [x[1] for x in interleaved] == [plan_b.decide("b").kind
                                           for _ in range(100)]


def test_site_filter_restricts_faults():
    plan = FaultPlan(FaultConfig(seed=1, drop_rate=1.0, sites=("hostA",)))
    assert plan.decide("hostA->sw.req").kind == "drop"
    assert plan.decide("hostB->sw.req").kind == "deliver"


def test_drop_exact_forces_the_nth_packet():
    plan = FaultPlan(FaultConfig(seed=1, drop_exact=(("linkX", 3),)))
    kinds = [plan.decide("linkX.req").kind for _ in range(5)]
    assert kinds == ["deliver", "deliver", "drop", "deliver", "deliver"]
    assert FaultPlan(
        FaultConfig(seed=1, drop_exact=(("linkX", 1),))
    ).decide("other").kind == "deliver"


def test_stall_decision_carries_duration():
    plan = FaultPlan(FaultConfig(seed=5, stall_rate=1.0, stall_ns=777))
    decision = plan.decide("any")
    assert decision.kind == "stall"
    assert decision.stall_ns == 777


def test_hang_remaining_window():
    plan = FaultPlan(FaultConfig(hib_hangs=((2, 1000, 500),)))
    assert plan.hang_remaining(2, 999) == 0
    assert plan.hang_remaining(2, 1000) == 500
    assert plan.hang_remaining(2, 1400) == 100
    assert plan.hang_remaining(2, 1500) == 0
    assert plan.hang_remaining(1, 1200) == 0


# -- config parsing -----------------------------------------------------------


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="drop_rat"):
        FaultConfig.from_dict({"seed": 1, "drop_rat": 0.1})


def test_rates_validated():
    with pytest.raises(ValueError, match="drop_rate"):
        FaultConfig(drop_rate=1.5)
    with pytest.raises(ValueError, match="stall_ns"):
        FaultConfig(stall_ns=-1)


def test_config_round_trips_through_dicts():
    config = FaultConfig.from_dict({
        "seed": 9, "drop_rate": 0.01,
        "drop_exact": [["hostA", 2]],
        "hib_hangs": [[1, 100, 200]],
        "sites": ["hostA", "sw0"],
    })
    assert config.drop_exact == (("hostA", 2),)
    assert config.hib_hangs == ((1, 100, 200),)
    assert FaultConfig.from_dict(config.to_dict()) == config


def test_categories_cover_all_rates():
    for category in CATEGORIES:
        assert hasattr(FaultConfig(), f"{category}_rate")


# -- the injector -------------------------------------------------------------


def test_injector_counts_and_traces():
    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now)
    injector = FaultInjector(
        sim, FaultConfig(seed=1, drop_exact=(("lnk", 1),)), tracer=tracer
    )
    action = injector.action_for("lnk.req", make_packet())
    assert action.kind == "drop" and action.forced
    assert injector.counts["drop"] == 1
    assert injector.counts["forced_drop"] == 1
    drops = tracer.select("fault_drop")
    assert len(drops) == 1
    assert drops[0].site == "lnk.req"
    snapshot = injector.snapshot()
    assert snapshot["injected"]["drop"] == 1
    assert snapshot["config"]["seed"] == 1
