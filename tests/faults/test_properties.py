"""Property-based stress harness: seeds x fault rates x protocols.

Every combination runs a small multi-writer workload over a lossy
fabric and asserts the invariants that must survive *any* fault
schedule the injector can produce:

- remote-mode runs end with exactly the fault-free memory image;
- replica-mode runs satisfy the checker's subsequence property and
  converge (no divergent words);
- outstanding-operation counters drain to zero at FENCE (quiescence).

Failure messages embed the fault seed so a red run is reproducible
from the message alone.  ``REPRO_STRESS_ITERS=N`` multiplies the seed
range (CI soak mode); the default matrix is 5 seeds x 4 scenarios.

The final test is a mutation check: it breaks the retransmission path
on purpose and demands that the same harness assertions catch it — a
harness that cannot fail verifies nothing.
"""

import os

import pytest

from repro.api import Cluster, ClusterConfig
from repro.hib.reliable import ReliableTransport
from repro.sim import SimulationDeadlock

STRESS_ITERS = max(1, int(os.environ.get("REPRO_STRESS_ITERS", "1")))
SEEDS = list(range(1, 1 + 5 * STRESS_ITERS))

#: (name, protocol, fault rates, contended writers).  Rates are per
#: link traversal, so a run of ~100 writes sees a handful of each
#: configured fault.  Galactica only promises *convergence* (the
#: paper's §2.4 criticism is exactly that its repairs violate
#: ordering), and its conflict detection assumes both updates traverse
#: the ring "at about the same time" — an assumption retransmission
#: delays legitimately break — so it runs single-producer here while
#: the counter protocol takes the contended schedule.
SCENARIOS = [
    ("none-drop", "none",
     {"drop_rate": 0.05}, False),
    ("none-drop-corrupt", "none",
     {"drop_rate": 0.02, "corrupt_rate": 0.02}, False),
    ("telegraphos-dup-stall", "telegraphos",
     {"duplicate_rate": 0.03, "stall_rate": 0.05}, True),
    ("galactica-combined", "galactica",
     {"drop_rate": 0.01, "corrupt_rate": 0.01,
      "duplicate_rate": 0.01, "stall_rate": 0.02}, False),
]

#: Retransmissions observed across the whole matrix, so the aggregate
#: test below can prove the harness actually exercised the retry path.
OBSERVED = {"retransmits": 0, "faults": 0}

N_WRITES = 24


def run_to_completion(cluster, contexts, seed):
    """Every workload here quiesces on a lossless fabric, so a run
    that deadlocks under faults is itself a recovery-protocol failure
    — report it as one, with the seed."""
    try:
        cluster.run(join=contexts)
    except SimulationDeadlock as stuck:
        raise AssertionError(
            f"cluster never quiesced (fault seed={seed}): {stuck}"
        ) from stuck


def run_remote(protocol, faults):
    """Two writer nodes stream into disjoint words of one home segment."""
    cluster = Cluster(ClusterConfig(n_nodes=3, protocol=protocol,
                                    faults=faults))
    seg = cluster.alloc_segment(home=1, pages=1, name="s")
    contexts = []
    expected = {}
    for slot, node in enumerate((0, 2)):
        proc = cluster.create_process(node=node, name=f"w{node}")
        base = proc.map(seg, mode="remote")

        def program(p, base=base, slot=slot):
            for i in range(N_WRITES):
                yield p.store(base + 4 * (slot * N_WRITES + i),
                              (slot + 1) * 1000 + i)
            yield p.fence()

        for i in range(N_WRITES):
            expected[4 * (slot * N_WRITES + i)] = (slot + 1) * 1000 + i
        contexts.append(cluster.start(proc, program))
    run_to_completion(cluster, contexts, faults["seed"])
    return cluster, expected


def run_replica(protocol, faults, contended=True):
    """Writer nodes store distinct values into a replicated page."""
    cluster = Cluster(ClusterConfig(n_nodes=3, protocol=protocol,
                                    faults=faults))
    seg = cluster.alloc_segment(home=0, pages=1, name="s")
    contexts = []
    writers = (1, 2) if contended else (1,)
    for node in writers:
        proc = cluster.create_process(node=node, name=f"w{node}")
        base = proc.map(seg, mode="replica")

        def program(p, base=base, node=node):
            for i in range(N_WRITES):
                # Contended words when more than one writer — every
                # value distinct, as the ABA scan requires.
                yield p.store(base + 4 * (i % 8), node * 10000 + i)
                yield p.think(300 * node)
            yield p.fence()

        contexts.append(cluster.start(proc, program))
    run_to_completion(cluster, contexts, faults["seed"])
    return cluster


def harvest(cluster):
    metrics = cluster.stats()["metrics"]
    OBSERVED["retransmits"] += sum(
        metrics.get("hib.retransmits", {}).values())
    OBSERVED["faults"] += sum(
        cluster.stats()["faults"]["injected"].values())


def check_remote(cluster, expected, seed):
    tag = f"(fault seed={seed})"
    memory = dict(cluster.nodes[1].backend.memory.written_words())
    assert memory == expected, f"final memory differs from lossless run {tag}"
    assert not cluster.stats()["faults"]["node_failures"], (
        f"low fault rates must never exhaust the retry limit {tag}")
    cluster.assert_quiescent()
    for station in cluster.nodes:
        assert station.hib.outstanding.count == 0, (
            f"node {station.node_id} outstanding ops leaked at FENCE {tag}")


def check_replica(cluster, seed, subsequence=True):
    tag = f"(fault seed={seed})"
    checker = cluster.checker()
    if subsequence:
        violations = checker.subsequence_violations()
        assert not violations, (
            f"subsequence property violated {tag}: {violations}")
    divergent = checker.divergent_words(cluster.backends(), words_per_page=8)
    assert not divergent, f"replicas diverged at quiescence {tag}: {divergent}"
    assert not cluster.stats()["faults"]["node_failures"], (
        f"low fault rates must never exhaust the retry limit {tag}")
    cluster.assert_quiescent()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,protocol,rates,contended",
                         SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_fault_matrix(name, protocol, rates, contended, seed):
    faults = dict(rates, seed=seed)
    if protocol == "none":
        cluster, expected = run_remote(protocol, faults)
        check_remote(cluster, expected, seed)
    else:
        cluster = run_replica(protocol, faults, contended=contended)
        check_replica(cluster, seed, subsequence=(protocol == "telegraphos"))
    harvest(cluster)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_eager_single_producer_survives_faults(seed):
    """Eager multicast only promises anything for a single producer
    (Figure 2's divergence is its concurrent-writer failure); with one
    producer it must still converge over a lossy fabric."""
    cluster = run_replica("eager", {"seed": seed, "drop_rate": 0.03},
                          contended=False)
    divergent = cluster.checker().divergent_words(
        cluster.backends(), words_per_page=8)
    assert not divergent, f"single-producer eager diverged (fault seed={seed})"
    cluster.assert_quiescent()
    harvest(cluster)


def test_zz_matrix_exercised_the_retry_path():
    """Runs after the matrix (name-ordered within the file): the rates
    above must actually have injected faults and provoked retries —
    a matrix that never loses a packet proves nothing."""
    assert OBSERVED["faults"] > 0
    assert OBSERVED["retransmits"] > 0


def test_zz_mutation_broken_retransmit_is_caught(monkeypatch):
    """Mutation check: fake a 'successful' recovery that abandons the
    window instead of resending it.  Depending on which packets were
    in the window the run either ends with a short memory image or
    never quiesces at all; either way the harness's own remote-mode
    checks must go red, with the seed in the message."""

    def broken_retransmit(self, channel, backoff):
        yield backoff
        while channel.unacked:
            self.hib.abandon_packet(channel.unacked.popleft(), channel.dst)
        channel.retransmitting = False
        waiters, channel.waiters = channel.waiters, []
        for gate in waiters:
            gate.set_result(None)
        channel.timer.cancel()

    monkeypatch.setattr(ReliableTransport, "_retransmit", broken_retransmit)
    with pytest.raises(AssertionError, match="seed=1"):
        cluster, expected = run_remote("none", {"seed": 1, "drop_rate": 0.05})
        check_remote(cluster, expected, seed=1)
