"""End-to-end scenarios for the reliable HIB transport.

Each test injects a specific fault class and asserts the cluster
recovers to the exact fault-free result — or, past the retry limit,
degrades into a structured :class:`~repro.faults.NodeFailure` instead
of hanging.
"""

import dataclasses

import pytest

from repro.api import Cluster, ClusterConfig
from repro.faults import NodeUnreachableError
from repro.params import DEFAULT_PARAMS


def small_retry_params(retry_limit=2):
    """Params with a tight retry budget so dead-peer tests stay fast."""
    return dataclasses.replace(
        DEFAULT_PARAMS,
        sizing=dataclasses.replace(DEFAULT_PARAMS.sizing,
                                   retry_limit=retry_limit),
    )


def writes_and_fence(cluster, n_writes=6, node=0, home=1):
    seg = cluster.alloc_segment(home=home, pages=1, name="s")
    proc = cluster.create_process(node=node, name="w")
    base = proc.map(seg, mode="remote")

    def program(p):
        for i in range(n_writes):
            yield p.store(base + 4 * i, 100 + i)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    return tuple(cluster.nodes[home].backend.memory.written_words())


def test_dropped_rsp_packet_recovers_by_timeout():
    expected = writes_and_fence(
        Cluster(ClusterConfig(n_nodes=2, protocol="none")), n_writes=1
    )
    # Drop the first reply-plane packet back to host 0.  With a single
    # write there is no later rsp traffic to carry a cumulative ack or
    # expose a sequence gap, so recovery can only come from a
    # retransmission timer expiring.
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none",
        faults={"seed": 1, "drop_exact": [["sw->host0.rsp", 1]]},
    ))
    assert writes_and_fence(cluster, n_writes=1) == expected
    cluster.assert_quiescent()
    metrics = cluster.stats()["metrics"]
    assert sum(metrics["hib.timeouts"].values()) >= 1
    assert sum(metrics["hib.retransmits"].values()) >= 1


def test_duplicates_are_discarded_not_reapplied():
    # Atomics are the non-idempotent probe: a duplicated ATOMIC_REQ
    # applied twice would double-increment, and a duplicated
    # ATOMIC_REPLY would resolve the same future twice.
    def total_after_fadds(faults):
        cluster = Cluster(ClusterConfig(n_nodes=2, protocol="none",
                                        faults=faults))
        seg = cluster.alloc_segment(home=1, pages=1, name="s")
        proc = cluster.create_process(node=0, name="a")
        base = proc.map(seg, mode="remote")

        def program(p):
            for _ in range(5):
                yield from p.fetch_and_add(base, 1)
            yield p.fence()

        cluster.run(join=[cluster.start(proc, program)])
        cluster.assert_quiescent()
        return cluster, cluster.node(1).backend.memory.load_word(0)

    cluster, total = total_after_fadds(
        {"seed": 2, "duplicate_rate": 0.5, "sites": ["host0->sw", "sw->host0"]}
    )
    assert total == 5
    injected = cluster.stats()["faults"]["injected"]
    assert injected["duplicate"] >= 1
    # Duplicated LL control packets are outside the sequence space
    # (processing a cumulative ack twice is harmless), so only the
    # sequenced duplicates show up as discards.
    metrics = cluster.stats()["metrics"]
    dup_discards = sum(v for v in metrics["hib.duplicates_discarded"].values())
    assert dup_discards >= 1


def test_corrupted_packets_are_retransmitted():
    expected = writes_and_fence(Cluster(ClusterConfig(n_nodes=2,
                                                      protocol="none")))
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none",
        faults={"seed": 3, "corrupt_rate": 0.2, "sites": ["host0->sw.req"]},
    ))
    assert writes_and_fence(cluster) == expected
    cluster.assert_quiescent()
    stats = cluster.stats()
    assert stats["faults"]["injected"]["corrupt"] >= 1
    assert stats["metrics"]["hib.corrupt_discarded"]["node=1"] >= 1


def test_hib_hang_stalls_service_but_preserves_results():
    expected = writes_and_fence(Cluster(ClusterConfig(n_nodes=2,
                                                      protocol="none")))
    hang_ns = 400_000
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none",
        faults={"seed": 1, "hib_hangs": [[1, 0, hang_ns]]},
    ))
    assert writes_and_fence(cluster) == expected
    cluster.assert_quiescent()
    hangs = cluster.tracer.select("hib_hang", node=1)
    assert hangs, "the hang window was never observed"
    # Nothing reached node 1's memory before the hang window closed.
    first_write = cluster.tracer.select("home_write", node=1)
    assert all(e.time >= hang_ns for e in first_write)


def test_total_loss_degrades_into_node_failure():
    # Everything host 0 sends is dropped; after retry_limit windows the
    # transport declares the peer dead, unwinds the outstanding count,
    # and FENCE completes instead of hanging forever.
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none", params=small_retry_params(retry_limit=2),
        faults={"seed": 1, "drop_rate": 1.0, "sites": ["host0->sw"]},
    ))
    writes_and_fence(cluster, n_writes=3)
    cluster.assert_quiescent()
    stats = cluster.stats()
    failures = stats["faults"]["node_failures"]
    assert len(failures) == 1
    failure = failures[0]
    assert failure["reporter"] == 0
    assert failure["peer"] == 1
    assert failure["retries"] == 2
    assert failure["lost_packets"] == {"WRITE_REQ": 3}
    assert failure["unrecovered"] == 0
    assert stats["faults"]["transport"][0]["dead_peers"] == [1]
    # The home memory never saw the writes — degradation, not silence.
    assert tuple(cluster.nodes[1].backend.memory.written_words()) == ()


def test_blocked_read_gets_node_unreachable_error():
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none", params=small_retry_params(retry_limit=2),
        faults={"seed": 1, "drop_rate": 1.0, "sites": ["host0->sw"]},
    ))
    seg = cluster.alloc_segment(home=1, pages=1, name="s")
    proc = cluster.create_process(node=0, name="r")
    base = proc.map(seg, mode="remote")
    caught = {}

    def program(p):
        try:
            yield p.load(base)
        except NodeUnreachableError as err:
            caught["err"] = err

    cluster.run(join=[cluster.start(proc, program)])
    assert caught["err"].node == 0
    assert caught["err"].peer == 1
    cluster.assert_quiescent()


def test_sends_to_a_dead_peer_are_abandoned_immediately():
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none", params=small_retry_params(retry_limit=1),
        faults={"seed": 1, "drop_rate": 1.0, "sites": ["host0->sw"]},
    ))
    seg = cluster.alloc_segment(home=1, pages=1, name="s")
    proc = cluster.create_process(node=0, name="w")
    base = proc.map(seg, mode="remote")

    def program(p):
        yield p.store(base, 1)
        yield p.fence()          # resolves via the NodeFailure unwind
        yield p.store(base, 2)   # peer already dead: abandoned inline
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    cluster.assert_quiescent()
    assert len(cluster.stats()["faults"]["node_failures"]) == 1


def test_reliability_false_runs_raw_faults_without_protocol():
    # With the protocol off, drops silently lose writes: the outstanding
    # counter never drains, which is exactly what the checker-visible
    # "unreliable fabric, no tolerance" mode is for.
    cluster = Cluster(ClusterConfig(
        n_nodes=2, protocol="none",
        faults={"seed": 1, "drop_exact": [["host0->sw.req", 1]],
                "reliability": False},
    ))
    assert cluster.nodes[0].hib.transport is None
    seg = cluster.alloc_segment(home=1, pages=1, name="s")
    proc = cluster.create_process(node=0, name="w")
    base = proc.map(seg, mode="remote")

    def program(p):
        yield p.store(base, 7)

    ctx = cluster.start(proc, program)
    cluster.run(join=[ctx])
    assert cluster.stats()["faults"]["injected"]["drop"] == 1
    assert not cluster.stats()["quiescent"]
    with pytest.raises(AssertionError, match="outstanding"):
        cluster.assert_quiescent()
