"""Pinned golden fixtures (byte-exact Chrome-trace exports)."""
