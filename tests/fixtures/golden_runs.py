"""Builders for the pinned golden-trace runs.

Two deterministic scenarios whose Chrome-trace exports are committed
byte-for-byte under ``tests/fixtures/``:

- **retry** — the golden single-drop run from
  ``tests/faults/test_golden_retry.py``: one forced drop, one nack,
  one go-back-N retransmission.
- **coherence** — a small telegraphos true-sharing run with lane
  spans on, exercising the coherence engine, UPDATE fan-out, and the
  cpu/hib/link duration lanes of the exporter.
- **collectives** — an X1-style 8-node NIC-barrier run (combining
  tree + multicast release), pinned under the calendar-queue kernel;
  its release fan-outs produce the densest same-timestamp batches.

The retry/coherence fixtures were produced by the pre-refactor kernel
(commit 531526b), so ``test_golden_traces.py`` proves the fast-path
and calendar-queue rewrites preserved the event schedule
*bit-for-bit*.  Every builder takes a ``kernel=`` argument so
``tests/sim/test_kernel_equivalence.py`` can replay the same run under
the reference kernel.  Regenerate (only after an intentional semantic
change) with::

    PYTHONPATH=src python -m tests.fixtures.golden_runs --regen
"""

from __future__ import annotations

import json
import os

from repro.api import Cluster, ClusterConfig
from repro.obs import chrome_trace

FIXTURE_DIR = os.path.dirname(__file__)

RETRY_FIXTURE = os.path.join(FIXTURE_DIR, "golden_retry_trace.json")
COHERENCE_FIXTURE = os.path.join(FIXTURE_DIR, "golden_coherence_trace.json")
COLLECTIVES_FIXTURE = os.path.join(
    FIXTURE_DIR, "golden_collectives_trace.json")

#: Same forced drop as tests/faults/test_golden_retry.py.
GOLDEN_FAULTS = {"seed": 1, "drop_exact": [["host0->sw.req", 2]]}


def retry_run(kernel: str = "bucket") -> Cluster:
    """The golden single-drop retry scenario (8 stores + fence)."""
    cluster = Cluster(ClusterConfig(n_nodes=2, protocol="none",
                                    faults=GOLDEN_FAULTS, kernel=kernel))
    seg = cluster.alloc_segment(home=1, pages=1, name="g")
    proc = cluster.create_process(node=0, name="g")
    base = proc.map(seg, mode="remote")

    def program(p):
        for i in range(8):
            yield p.store(base + 4 * i, 100 + i)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    cluster.assert_quiescent()
    return cluster


def coherence_run(kernel: str = "bucket") -> Cluster:
    """A telegraphos true-sharing run with lane spans enabled."""
    cluster = Cluster(ClusterConfig(n_nodes=3, protocol="telegraphos",
                                    topology="chain", trace_lanes=True,
                                    kernel=kernel))
    seg = cluster.alloc_segment(home=0, pages=1, name="coh")
    ctxs = []
    for node in (1, 2):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg, mode="replica")

        def program(p, base=base, node=node):
            for i in range(4):
                yield p.store(base + 4 * (i % 2), node * 100 + i)
                yield p.think(1500)
                yield from p.fetch_and_add(base + 0x80, 1)
            yield p.fence()

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    return cluster


def collectives_run(kernel: str = "bucket") -> Cluster:
    """An X1-style 8-node NIC-collectives run: staggered arrivals into
    three barrier rounds over the HIB combining tree + multicast
    release (the calendar-queue kernel's densest same-timestamp
    batches come from exactly this release fan-out)."""
    n = 8
    cluster = Cluster(ClusterConfig(n_nodes=n, collectives="nic",
                                    kernel=kernel))
    group = cluster.collective_group("bar")
    contexts = []
    for node in range(n):
        proc = cluster.create_process(node=node, name=f"b{node}")
        collective = group.join(proc)

        def program(p, c=collective, node=node):
            for _ in range(3):
                yield p.think(1_000 * (node + 1))
                yield from c.barrier()

        contexts.append(proc.start(program))
    cluster.run(join=contexts)
    return cluster


def canonical_trace_bytes(cluster: Cluster) -> bytes:
    """Byte-exact canonical form of the Chrome-trace export."""
    doc = chrome_trace(cluster)
    text = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    return text.encode("utf-8")


GOLDEN_RUNS = {
    RETRY_FIXTURE: retry_run,
    COHERENCE_FIXTURE: coherence_run,
    COLLECTIVES_FIXTURE: collectives_run,
}


def main() -> None:  # pragma: no cover - fixture maintenance
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--regen", action="store_true",
                        help="rewrite the committed fixtures in place")
    args = parser.parse_args()
    if not args.regen:
        parser.error("pass --regen to rewrite the pinned fixtures")
    for path, build in GOLDEN_RUNS.items():
        with open(path, "wb") as fh:
            fh.write(canonical_trace_bytes(build()))
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
