"""Determinism regression against pinned byte-exact fixtures.

The fixtures were exported by the pre-refactor kernel, so these tests
prove the fast-path refactor (slotted events, packet pooling, fast run
loops) preserved the simulator's event schedule bit-for-bit — not just
"a deterministic schedule", but *the same* schedule.
"""

from tests.fixtures.golden_runs import (
    COHERENCE_FIXTURE,
    COLLECTIVES_FIXTURE,
    RETRY_FIXTURE,
    canonical_trace_bytes,
    coherence_run,
    collectives_run,
    retry_run,
)


def _assert_matches_fixture(cluster, path):
    with open(path, "rb") as fh:
        expected = fh.read()
    actual = canonical_trace_bytes(cluster)
    assert actual == expected, (
        f"Chrome-trace output drifted from pinned fixture {path}; if "
        "the change is an intentional semantic change, regenerate via "
        "`PYTHONPATH=src python -m tests.fixtures.golden_runs --regen`"
    )


def test_retry_trace_matches_pinned_fixture():
    _assert_matches_fixture(retry_run(), RETRY_FIXTURE)


def test_coherence_trace_matches_pinned_fixture():
    _assert_matches_fixture(coherence_run(), COHERENCE_FIXTURE)


def test_collectives_trace_matches_pinned_fixture():
    # Pinned under the calendar-queue kernel: the NIC barrier's
    # multicast release produces the densest same-timestamp batches,
    # so this fixture is the batch-dispatch regression canary.
    _assert_matches_fixture(collectives_run(), COLLECTIVES_FIXTURE)
