"""A hand-wired mini-cluster rig for HIB tests.

Builds N full nodes — CPU, DRAM, memory bus, TurboChannel, HIB with an
MPM backend, interrupt controller — on a single-switch fabric, without
the OS layer (tests construct address spaces directly, playing the role
of the OS mapping pages per §2.2.1).
"""

import pytest

from repro.hib import HIB
from repro.hib.backend import MpmBackend
from repro.machine import (
    AddressMap,
    AddressSpace,
    Bus,
    CPU,
    InterruptController,
    PageTableEntry,
    WordMemory,
)
from repro.network import Fabric
from repro.network.topology import star
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator, Tracer


class RigNode:
    def __init__(self, sim, params, node_id, amap, fabric, tracer):
        timing = params.timing
        self.node_id = node_id
        self.amap = amap
        self.dram = WordMemory(1 << 22, name=f"dram{node_id}")
        self.membus = Bus(sim, f"membus{node_id}", timing.membus_arb_ns)
        self.tc_bus = Bus(sim, f"tc{node_id}", 0)
        self.interrupts = InterruptController(sim, timing, node_id)
        self.backend = MpmBackend(timing, params.sizing.mpm_bytes, node_id)
        self.hib = HIB(
            sim,
            params,
            node_id,
            amap,
            fabric.port(node_id),
            self.tc_bus,
            self.backend,
            interrupts=self.interrupts,
            tracer=tracer,
        )
        self.cpu = CPU(sim, params, node_id, amap, self.dram, self.membus, self.hib)


class Rig:
    """N nodes on one switch."""

    def __init__(self, n_nodes=2, params=None):
        self.params = params or DEFAULT_PARAMS
        self.sim = Simulator()
        self.amap = AddressMap(page_bytes=self.params.sizing.page_bytes)
        self.tracer = Tracer(clock=lambda: self.sim.now, enabled=True)
        self.fabric = Fabric(self.sim, self.params, star(n_nodes))
        self.nodes = [
            RigNode(self.sim, self.params, n, self.amap, self.fabric, self.tracer)
            for n in range(n_nodes)
        ]

    def node(self, n) -> RigNode:
        return self.nodes[n]

    # -- address-space helpers (the OS's §2.2.1 mapping job) -----------

    def space(self, node_id) -> AddressSpace:
        return AddressSpace(self.amap, name=f"as{node_id}")

    def map_hib_page(self, space, vpage=0):
        """Map the HIB control-register page."""
        space.map_page(vpage, PageTableEntry(self.amap.hib_register(0)))
        return vpage * self.amap.page_bytes

    def map_remote(self, space, vpage, home, remote_page=0, **perm):
        """Map a window onto ``home``'s shared page ``remote_page``."""
        base = self.amap.remote(home, self.amap.page_base(remote_page))
        space.map_page(vpage, PageTableEntry(base, **perm))
        return vpage * self.amap.page_bytes

    def map_mpm(self, space, vpage, local_page=0, **perm):
        base = self.amap.mpm(self.amap.page_base(local_page))
        space.map_page(vpage, PageTableEntry(base, **perm))
        return vpage * self.amap.page_bytes

    def map_shadow_remote(self, space, vpage, home, remote_page=0):
        """The Tg II shadow image of a remote page (§2.2.4)."""
        base = self.amap.shadow(
            self.amap.remote(home, self.amap.page_base(remote_page))
        )
        space.map_page(vpage, PageTableEntry(base))
        return vpage * self.amap.page_bytes

    def map_context_page(self, space, vpage, ctx_id):
        from repro.hib.registers import Reg

        base = self.amap.hib_register(
            Reg.context_page_offset(ctx_id, self.amap.page_bytes)
        )
        space.map_page(vpage, PageTableEntry(base))
        return vpage * self.amap.page_bytes

    # -- execution ------------------------------------------------------

    def run_on(self, node_id, body, space, name=None):
        node = self.nodes[node_id]
        return node.cpu.start_program(
            body, space, name or f"prog{node_id}-{len(node.cpu.programs)}"
        )

    def run_all(self, *ctxs, limit_ns=None):
        self.sim.run_until_done(
            [c.process for c in ctxs], limit_ns=limit_ns or 10**10
        )
        self.sim.run()  # drain residual acks/bookkeeping


@pytest.fixture
def rig():
    return Rig(n_nodes=3)
