"""The register-mapped page-counter window (§2.2.6): user-level tools
arm and read counters through plain HIB-register loads and stores."""

from repro.hib import Reg
from repro.machine import Fence, Load, Store



def select(hib_base, node, page):
    return [
        Store(hib_base + Reg.COUNTER_SELECT_NODE, node),
        Store(hib_base + Reg.COUNTER_SELECT_PAGE, page),
    ]


def test_arm_and_read_counters_via_registers(rig):
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1, remote_page=0)
    got = {}

    def prog():
        # Arm the write counter for (home 1, page 0) to 5.
        for op in select(hib_base, 1, 0):
            yield op
        yield Store(hib_base + Reg.COUNTER_WRITE_CTR, 5)
        # Make three remote writes.
        for i in range(3):
            yield Store(base + 4 * i, i)
        yield Fence()
        # Read back: counter decremented to 2; lifetime total is 3.
        got["write_ctr"] = yield Load(hib_base + Reg.COUNTER_WRITE_CTR)
        got["total"] = yield Load(hib_base + Reg.COUNTER_TOTAL)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == {"write_ctr": 2, "total": 3}


def test_read_counter_window_independent_of_write(rig):
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=2, remote_page=0)
    got = {}

    def prog():
        for op in select(hib_base, 2, 0):
            yield op
        yield Store(hib_base + Reg.COUNTER_READ_CTR, 10)
        yield Load(base)
        yield Load(base + 4)
        got["read_ctr"] = yield Load(hib_base + Reg.COUNTER_READ_CTR)
        got["write_ctr"] = yield Load(hib_base + Reg.COUNTER_WRITE_CTR)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got["read_ctr"] == 8
    assert got["write_ctr"] == 0  # never armed


def test_selection_switches_between_pages(rig):
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base_p0 = rig.map_remote(space, vpage=1, home=1, remote_page=0)
    base_p1 = rig.map_remote(space, vpage=2, home=1, remote_page=1)
    got = {}

    def prog():
        yield Store(base_p0, 1)
        yield Store(base_p1, 2)
        yield Store(base_p1, 3)
        yield Fence()
        for op in select(hib_base, 1, 0):
            yield op
        got["p0"] = yield Load(hib_base + Reg.COUNTER_TOTAL)
        yield Store(hib_base + Reg.COUNTER_SELECT_PAGE, 1)
        got["p1"] = yield Load(hib_base + Reg.COUNTER_TOTAL)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == {"p0": 1, "p1": 2}
