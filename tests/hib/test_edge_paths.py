"""Edge-path tests for the HIB: third-party copies, read-token
limiting, reply bookkeeping, stats."""


from repro.hib import Reg, SpecialOpcode
from repro.machine import Fence, Load, PalSequence, Store



def test_copy_between_two_remote_nodes(rig):
    """Copy where neither source nor destination is local: the home of
    the source reads it and forwards a write to the third node; the
    origin's fence still detects completion."""
    rig.node(1).backend.poke(0x10, 616)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    src_base = rig.map_remote(space, vpage=1, home=1)
    dst_base = rig.map_remote(space, vpage=2, home=2, remote_page=3)

    def prog():
        yield PalSequence([
            Store(hib_base + Reg.SPECIAL_MODE, SpecialOpcode.REMOTE_COPY.value),
            Store(src_base + 0x10, 0),
            Store(dst_base + 0x20, 0),
            Store(hib_base + Reg.SPECIAL_GO, 0),
        ])
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    page = rig.amap.page_bytes
    assert rig.node(2).backend.peek(3 * page + 0x20) == 616
    assert rig.node(0).hib.outstanding.count == 0


def test_copy_local_to_local(rig):
    rig.node(0).backend.poke(0x0, 5)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    local_a = rig.map_mpm(space, vpage=1, local_page=0)
    local_b = rig.map_mpm(space, vpage=2, local_page=1)

    def prog():
        yield PalSequence([
            Store(hib_base + Reg.SPECIAL_MODE, SpecialOpcode.REMOTE_COPY.value),
            Store(local_a, 0),
            Store(local_b + 0x8, 0),
            Store(hib_base + Reg.SPECIAL_GO, 0),
        ])

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(0).backend.peek(rig.amap.page_bytes + 0x8) == 5
    # Pure local copy: no network traffic at all.
    assert rig.node(0).hib.stats["remote_writes"] == 0


def test_single_outstanding_read_token(rig):
    """§2.3.5 footnote: 'there can be no more than one outstanding
    read operation' — reads are blocking so the token pool is never
    contended by one program, but the pool must refill (N sequential
    reads complete)."""
    hib = rig.node(0).hib
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)
    got = []

    def prog():
        for i in range(4):
            got.append((yield Load(base + 4 * i)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [0, 0, 0, 0]
    assert len(hib._read_tokens) == 1  # the token came back each time


def test_unknown_reply_op_id_is_fatal(rig):
    """A reply for an operation nobody issued indicates protocol
    corruption; the HIB refuses to continue silently."""
    from repro.network.packet import Packet, PacketKind

    rig.sim.strict_failures = False
    pkt = Packet(PacketKind.READ_REPLY, src=1, dst=0,
                 size_bytes=10, value=1, op_id=424242)

    def inject():
        yield rig.fabric.port(1).send(pkt)

    rig.sim.spawn(inject())
    rig.sim.run()
    assert rig.sim.failures, "the stray reply must surface an error"


def test_stats_counters_accumulate(rig):
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)

    def prog():
        yield Store(base, 1)
        yield Load(base)
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    stats = rig.node(0).hib.stats
    assert stats["remote_writes"] == 1
    assert stats["remote_reads"] == 1
    # Home node served the write, the read, and nothing else odd.
    assert rig.node(1).hib.stats["packets_served"] >= 2


def test_hib_register_load_unknown_offset_fails(rig):
    from repro.hib import LaunchError

    rig.sim.strict_failures = False
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)

    def prog():
        yield Load(hib_base + 0x1000)  # in the register page, no such register

    ctx = rig.run_on(0, prog(), space)
    rig.sim.run()
    assert isinstance(ctx.process.exception, LaunchError)


def test_hib_register_store_unknown_offset_fails(rig):
    from repro.hib import LaunchError

    rig.sim.strict_failures = False
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)

    def prog():
        yield Store(hib_base + Reg.NODE_ID, 7)  # read-only register

    ctx = rig.run_on(0, prog(), space)
    rig.sim.run()
    assert isinstance(ctx.process.exception, LaunchError)
