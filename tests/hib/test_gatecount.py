"""Table 1 gate-count model: reproduce the paper's numbers exactly
with the default configuration."""

from repro.hib import GateCountModel
from repro.params import SizingParams


def block_by_name(model, name):
    return next(b for b in model.blocks() if b.name == name)


def test_default_blocks_match_table1():
    model = GateCountModel()
    expectations = {
        "Central control": (1000, 0.5),
        "Turbochannel interface": (550, 0.0),
        "Incoming link intf.": (1000, 2.0),
        "Outgoing link intf.": (750, 2.0),
        "Atomic operations": (1500, 0.0),
        "Multicast (eager sharing)": (400, 512.0),
        "Page Access Counters": (800, 2048.0),
        "Multiproc. Mem. (MPM)": (0, 0.0),
    }
    for name, (gates, kbits) in expectations.items():
        block = block_by_name(model, name)
        assert block.gates == gates, name
        assert block.sram_kbits == kbits, name


def test_subtotals_match_table1():
    model = GateCountModel()
    # "Subtotal message related: 3300 gates, 4.5 Kbits"
    assert model.subtotal("message") == (3300, 4.5)
    # "Subtotal shared mem. rel.: 2700 gates" — the paper's SRAM
    # subtotal of 2500 Kbits is 512 + 2048 rounded down.
    gates, kbits = model.subtotal("shared")
    assert gates == 2700
    assert kbits == 2560.0


def test_headline_claim():
    """§3.1: 'the portion of the network interface that is necessary
    for supporting shared memory is very small: 2700 gates'."""
    model = GateCountModel()
    assert model.shared_memory_gates == 2700
    assert model.message_related_gates == 3300


def test_multicast_sram_scales_with_entries():
    half = GateCountModel(SizingParams(multicast_entries=8192))
    assert block_by_name(half, "Multicast (eager sharing)").sram_kbits == 256.0


def test_counter_sram_scales_with_pages_and_width():
    model = GateCountModel(SizingParams(counted_pages=32768, page_counter_bits=8))
    assert block_by_name(model, "Page Access Counters").sram_kbits == 512.0


def test_mpm_note_scales():
    model = GateCountModel(SizingParams(mpm_bytes=32 * 1024 * 1024))
    note = block_by_name(model, "Multiproc. Mem. (MPM)").note
    assert "32 MBytes" in note
    assert "256 Mbits" in note


def test_render_contains_all_rows_and_subtotals():
    text = GateCountModel().render()
    for fragment in [
        "Central control",
        "Atomic operations",
        "16 K multicast list entries x 32 bits",
        "64 K pages x (16+16) bits",
        "Subtotal message related",
        "Subtotal shared mem. rel.",
        "3300",
        "2700",
    ]:
        assert fragment in text
