"""End-to-end tests of the HIB datapath on a mini-cluster: remote
write/read, fences, atomics (both launch mechanisms), remote copy,
page-counter alarms, raw multicast."""


from repro.hib import Reg, SpecialOpcode
from repro.machine import Fence, Load, PalSequence, Store
from repro.machine.cpu import ProtectionViolation



# ---------------------------------------------------------------------------
# Remote write / read (§2.2.1)
# ---------------------------------------------------------------------------


def test_remote_write_lands_in_home_mpm(rig):
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1, remote_page=0)

    def prog():
        yield Store(base + 0x40, 1234)
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(1).backend.peek(0x40) == 1234


def test_remote_write_is_acknowledged_back_to_zero_outstanding(rig):
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)

    def prog():
        for i in range(5):
            yield Store(base + 4 * i, i)
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    hib = rig.node(0).hib
    assert hib.outstanding.count == 0
    assert hib.outstanding.total_issued == 5
    assert hib.stats["remote_writes"] == 5


def test_remote_read_returns_home_value(rig):
    rig.node(1).backend.poke(0x80, 777)
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)
    got = []

    def prog():
        got.append((yield Load(base + 0x80)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [777]
    assert rig.node(0).hib.stats["remote_reads"] == 1


def test_read_own_write_roundtrip(rig):
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=2)
    got = []

    def prog():
        yield Store(base, 42)
        yield Fence()  # write completion before the read
        got.append((yield Load(base)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [42]


def test_remote_write_much_faster_than_remote_read(rig):
    """The §3.2 asymmetry: a write completes at the local HIB; a read
    blocks for the whole round trip."""
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)
    marks = {}

    def prog():
        start = rig.sim.now
        yield Store(base, 1)
        marks["write"] = rig.sim.now - start
        yield Fence()
        start = rig.sim.now
        yield Load(base)
        marks["read"] = rig.sim.now - start

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert marks["read"] > 4 * marks["write"]


def test_fence_blocks_until_writes_complete(rig):
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)
    marks = {}

    def prog():
        for i in range(20):
            yield Store(base + 4 * i, i)
        marks["issued"] = rig.sim.now
        yield Fence()
        marks["fenced"] = rig.sim.now

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    # 20 writes were buffered; the fence had to wait for their acks.
    assert marks["fenced"] > marks["issued"]
    assert rig.node(0).hib.outstanding.count == 0


def test_local_mpm_store_and_load(rig):
    space = rig.space(0)
    base = rig.map_mpm(space, vpage=0, local_page=0)
    got = []

    def prog():
        yield Store(base + 8, 55)
        got.append((yield Load(base + 8)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [55]
    assert rig.node(0).backend.peek(8) == 55


def test_write_to_readonly_remote_page_faults(rig):
    """Protection is the MMU's job (§2.2): no write permission, no
    remote write."""
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1, writable=False)
    outcome = []

    def prog():
        try:
            yield Store(base, 1)
        except ProtectionViolation:
            outcome.append("faulted")

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert outcome == ["faulted"]
    assert rig.node(1).backend.peek(0) == 0


# ---------------------------------------------------------------------------
# HIB registers
# ---------------------------------------------------------------------------


def test_node_id_and_outstanding_registers(rig):
    space = rig.space(1)
    hib_base = rig.map_hib_page(space, vpage=0)
    got = []

    def prog():
        got.append((yield Load(hib_base + Reg.NODE_ID)))
        got.append((yield Load(hib_base + Reg.OUTSTANDING)))

    ctx = rig.run_on(1, prog(), space)
    rig.run_all(ctx)
    assert got == [1, 0]


def test_fence_register_equivalent_to_fence_op(rig):
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1)
    got = []

    def prog():
        yield Store(base, 9)
        got.append((yield Load(hib_base + Reg.FENCE)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [0]
    assert rig.node(0).hib.outstanding.count == 0


# ---------------------------------------------------------------------------
# Telegraphos I special mode + PAL launches (§2.2.4)
# ---------------------------------------------------------------------------


def tg1_atomic(hib_base, opcode, target_vaddr, *operand_stores):
    """Build the Tg I PAL launch sequence for an atomic."""
    ops = [Store(hib_base + Reg.SPECIAL_MODE, opcode.value)]
    ops.extend(Store(target_vaddr, v) for v in operand_stores)
    ops.append(Load(hib_base + Reg.SPECIAL_RESULT))
    return PalSequence(ops)


def test_tg1_fetch_and_add_remote(rig):
    rig.node(1).backend.poke(0x100, 10)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1)
    got = []

    def prog():
        got.append(
            (yield tg1_atomic(hib_base, SpecialOpcode.FETCH_AND_ADD, base + 0x100, 5))
        )

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [10]  # fetch returns the old value
    assert rig.node(1).backend.peek(0x100) == 15


def test_tg1_fetch_and_add_is_atomic_under_contention(rig):
    """Two nodes increment the same remote word concurrently; no
    update is lost (the §2.2.3 synchronization claim)."""
    target_home = 2
    per_node = 10
    ctxs = []
    for node in (0, 1):
        space = rig.space(node)
        hib_base = rig.map_hib_page(space, vpage=0)
        base = rig.map_remote(space, vpage=1, home=target_home)

        def prog(hib_base=hib_base, base=base):
            for _ in range(per_node):
                yield tg1_atomic(
                    hib_base, SpecialOpcode.FETCH_AND_ADD, base + 0x200, 1
                )

        ctxs.append(rig.run_on(node, prog(), space))
    rig.run_all(*ctxs)
    assert rig.node(target_home).backend.peek(0x200) == 2 * per_node


def test_tg1_fetch_and_store(rig):
    rig.node(1).backend.poke(0x0, 111)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1)
    got = []

    def prog():
        got.append(
            (yield tg1_atomic(hib_base, SpecialOpcode.FETCH_AND_STORE, base, 222))
        )

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [111]
    assert rig.node(1).backend.peek(0) == 222


def test_tg1_compare_and_swap(rig):
    rig.node(1).backend.poke(0x0, 5)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1)
    got = []

    def prog():
        # Success: 5 -> 9.
        got.append(
            (yield tg1_atomic(hib_base, SpecialOpcode.COMPARE_AND_SWAP, base, 5, 9))
        )
        # Failure: comparand stale.
        got.append(
            (yield tg1_atomic(hib_base, SpecialOpcode.COMPARE_AND_SWAP, base, 5, 13))
        )

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [5, 9]
    assert rig.node(1).backend.peek(0) == 9


def test_tg1_atomic_on_local_mpm(rig):
    rig.node(0).backend.poke(0x10, 100)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_mpm(space, vpage=1, local_page=0)
    got = []

    def prog():
        got.append(
            (yield tg1_atomic(hib_base, SpecialOpcode.FETCH_AND_ADD, base + 0x10, 1))
        )

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [100]
    assert rig.node(0).backend.peek(0x10) == 101


def test_tg1_special_mode_store_is_not_performed(rig):
    """§2.2.4: in special mode the HIB 'does not perform the remote
    read/write operations requested by its local processor' — the
    argument store must not write memory."""
    rig.node(1).backend.poke(0x0, 1)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    base = rig.map_remote(space, vpage=1, home=1)

    def prog():
        yield tg1_atomic(hib_base, SpecialOpcode.FETCH_AND_ADD, base, 0)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    # fetch_add of 0: value unchanged; crucially never overwritten
    # with the operand (0) by a spurious remote write.
    assert rig.node(1).backend.peek(0) == 1
    assert rig.node(0).hib.stats["remote_writes"] == 0


def test_tg1_remote_copy_prefetch(rig):
    """Remote copy (§2.2.2): non-blocking fetch of a remote word into
    local MPM."""
    rig.node(1).backend.poke(0x30, 4242)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    remote_base = rig.map_remote(space, vpage=1, home=1)
    local_base = rig.map_mpm(space, vpage=2, local_page=1)
    marks = {}

    def prog():
        start = rig.sim.now
        yield PalSequence(
            [
                Store(hib_base + Reg.SPECIAL_MODE, SpecialOpcode.REMOTE_COPY.value),
                Store(remote_base + 0x30, 0),
                Store(local_base + 0x50, 0),
                Store(hib_base + Reg.SPECIAL_GO, 0),
            ]
        )
        marks["launch"] = rig.sim.now - start
        yield Fence()
        marks["complete"] = rig.sim.now - start

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    local_page_bytes = rig.amap.page_bytes
    assert rig.node(0).backend.peek(local_page_bytes + 0x50) == 4242
    # Launch returned well before completion: it is non-blocking.
    assert marks["launch"] < marks["complete"]


def test_tg1_copy_local_to_remote(rig):
    rig.node(0).backend.poke(0x0, 31)
    space = rig.space(0)
    hib_base = rig.map_hib_page(space, vpage=0)
    remote_base = rig.map_remote(space, vpage=1, home=2)
    local_base = rig.map_mpm(space, vpage=2, local_page=0)

    def prog():
        yield PalSequence(
            [
                Store(hib_base + Reg.SPECIAL_MODE, SpecialOpcode.REMOTE_COPY.value),
                Store(local_base, 0),
                Store(remote_base + 0x8, 0),
                Store(hib_base + Reg.SPECIAL_GO, 0),
            ]
        )
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(2).backend.peek(0x8) == 31


# ---------------------------------------------------------------------------
# Page access counters (§2.2.6)
# ---------------------------------------------------------------------------


def test_page_counter_alarm_interrupt(rig):
    alarms = []

    def handler(payload):
        alarms.append(payload)
        yield 0

    rig.node(0).interrupts.register("page_alarm", handler)
    rig.node(0).hib.page_counters.set_counter((1, 0), "write", 3)
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1, remote_page=0)

    def prog():
        for i in range(5):
            yield Store(base + 4 * i, i)
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert len(alarms) == 1
    assert alarms[0]["page"] == (1, 0)
    assert alarms[0]["kind"] == "write"
    # Lifetime totals keep counting past the alarm.
    assert rig.node(0).hib.page_counters.write_accesses[(1, 0)] == 5


def test_read_and_write_counters_separate(rig):
    hib = rig.node(0).hib
    hib.page_counters.set_counter((1, 0), "read", 10)
    hib.page_counters.set_counter((1, 0), "write", 10)
    space = rig.space(0)
    base = rig.map_remote(space, vpage=0, home=1)

    def prog():
        yield Store(base, 1)
        yield Load(base)
        yield Load(base)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert hib.page_counters.read_counter((1, 0), "read") == 8
    assert hib.page_counters.read_counter((1, 0), "write") == 9


# ---------------------------------------------------------------------------
# Raw eager-update multicast (§2.2.7)
# ---------------------------------------------------------------------------


def test_multicast_forwards_local_writes_to_all_destinations(rig):
    hib = rig.node(0).hib
    hib.multicast.map_out(local_page=0, node=1, remote_page=2)
    hib.multicast.map_out(local_page=0, node=2, remote_page=3)
    space = rig.space(0)
    base = rig.map_mpm(space, vpage=0, local_page=0)

    def prog():
        yield Store(base + 0x20, 99)
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    page = rig.amap.page_bytes
    assert rig.node(0).backend.peek(0x20) == 99          # local copy
    assert rig.node(1).backend.peek(2 * page + 0x20) == 99
    assert rig.node(2).backend.peek(3 * page + 0x20) == 99
    assert hib.stats["multicast_updates"] == 2


def test_multicast_unmapped_page_stays_local(rig):
    space = rig.space(0)
    base = rig.map_mpm(space, vpage=0, local_page=1)

    def prog():
        yield Store(base, 7)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(0).hib.stats["multicast_updates"] == 0


# ---------------------------------------------------------------------------
# Reset / recovery
# ---------------------------------------------------------------------------


def test_reset_special_state_clears_armed_mode(rig):
    hib = rig.node(0).hib
    hib.special1.arm(SpecialOpcode.FETCH_AND_ADD.value)
    hib.reset_special_state()
    assert not hib.special1.armed
