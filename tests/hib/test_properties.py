"""Property-based tests of the HIB's operation-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster
from repro.hib.atomic import AtomicOp, apply_atomic


# -- atomic ALU algebra (pure, fast) -------------------------------------


@given(old=st.integers(), operand=st.integers())
def test_property_fetch_returns_old(old, operand):
    for op in AtomicOp:
        result, _new = apply_atomic(op, old, operand, operand)
        assert result == old


@given(old=st.integers(), a=st.integers(), b=st.integers())
def test_property_cas_writes_iff_match(old, a, b):
    _result, new = apply_atomic(AtomicOp.COMPARE_AND_SWAP, old, a, b)
    if old == a:
        assert new == b
    else:
        assert new == old


@given(old=st.integers(), delta=st.integers())
def test_property_fad_adds(old, delta):
    _result, new = apply_atomic(AtomicOp.FETCH_AND_ADD, old, delta)
    assert new == old + delta


# -- linearizability of remote atomics under contention ---------------------


@given(
    increments=st.lists(
        st.tuples(st.sampled_from([0, 1, 2]), st.integers(1, 5)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=12, deadline=None)
def test_property_no_lost_fetch_and_add(increments):
    """Any mix of fetch&adds from any nodes sums exactly — the HIB's
    rmw makes the home the single serialization point."""
    cluster = Cluster(n_nodes=3, trace=False)
    seg = cluster.alloc_segment(home=2, pages=1, name="ctr")
    per_node = {}
    for node, delta in increments:
        per_node.setdefault(node, []).append(delta)
    ctxs = []
    fetched = []
    for node, deltas in per_node.items():
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg)

        def program(p, deltas=deltas, base=base):
            for delta in deltas:
                old = yield from p.fetch_and_add(base, delta)
                fetched.append(old)

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    total = sum(delta for _, delta in increments)
    assert seg.peek(0) == total
    # Every fetch observed a value in range and all were distinct
    # prefix sums of *some* serialization.
    assert len(fetched) == len(increments)
    assert len(set(fetched)) == len(fetched)
    assert all(0 <= v < total for v in fetched)


# -- write/fence invariants ---------------------------------------------------


@given(
    n_writes=st.integers(min_value=1, max_value=30),
    home=st.sampled_from([1, 2]),
)
@settings(max_examples=10, deadline=None)
def test_property_fence_implies_all_writes_visible(n_writes, home):
    cluster = Cluster(n_nodes=3, trace=False)
    seg = cluster.alloc_segment(home=home, pages=1, name="w")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        for i in range(n_writes):
            yield p.store(base + 4 * i, i + 1)
        yield p.fence()
        # Post-fence, every write is in the home memory (checked
        # below at this instant, not after drain).
        for i in range(n_writes):
            assert seg.peek(4 * i) == i + 1, i

    cluster.run_programs([cluster.start(proc, program)])
    assert cluster.node(0).hib.outstanding.count == 0


@given(values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=12))
@settings(max_examples=10, deadline=None)
def test_property_last_write_wins_per_word(values):
    """Same-source writes to one word apply in program order (per-pair
    in-order delivery), so the final value is the last written."""
    cluster = Cluster(n_nodes=2, trace=False)
    seg = cluster.alloc_segment(home=1, pages=1, name="w")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        for value in values:
            yield p.store(base, value)
        yield p.fence()

    cluster.run_programs([cluster.start(proc, program)])
    assert seg.peek(0) == values[-1] & 0xFFFFFFFF
