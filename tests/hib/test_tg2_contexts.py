"""Telegraphos II launches: contexts + keys + shadow addressing
(§2.2.4, §2.2.5) — including the interruption-resilience property
that distinguishes Tg II from Tg I's PAL approach."""

from repro.hib import Reg, SpecialOpcode
from repro.machine import Load, Store, Think



def setup_context(rig, node, ctx_id, key):
    rig.node(node).hib.assign_context(ctx_id, key)


def tg2_launch_ops(ctx_base, shadow_vaddr, ctx_id, key, opcode, operands):
    """The uncached-write sequence of §2.2.4, as separate ops (no PAL
    needed — that's the point of contexts)."""
    ops = [Store(ctx_base + Reg.CTX_OPCODE, opcode.value)]
    for i, operand in enumerate(operands):
        reg = Reg.CTX_OPERAND0 if i == 0 else Reg.CTX_OPERAND1
        ops.append(Store(ctx_base + reg, operand))
    ops.append(Store(shadow_vaddr, Reg.shadow_argument(ctx_id, key)))
    ops.append(Load(ctx_base + Reg.CTX_GO))
    return ops


def test_tg2_fetch_and_add(rig):
    rig.node(1).backend.poke(0x100, 50)
    setup_context(rig, node=0, ctx_id=2, key=0xABCDE)
    space = rig.space(0)
    ctx_base = rig.map_context_page(space, vpage=0, ctx_id=2)
    rig.map_remote(space, vpage=1, home=1)
    shadow_base = rig.map_shadow_remote(space, vpage=2, home=1)
    got = []

    def prog():
        for op in tg2_launch_ops(
            ctx_base,
            shadow_base + 0x100,
            ctx_id=2,
            key=0xABCDE,
            opcode=SpecialOpcode.FETCH_AND_ADD,
            operands=[7],
        ):
            result = yield op
        got.append(result)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [50]
    assert rig.node(1).backend.peek(0x100) == 57


def test_tg2_compare_and_swap(rig):
    rig.node(1).backend.poke(0x0, 3)
    setup_context(rig, node=0, ctx_id=0, key=0x11)
    space = rig.space(0)
    ctx_base = rig.map_context_page(space, vpage=0, ctx_id=0)
    shadow_base = rig.map_shadow_remote(space, vpage=1, home=1)
    got = []

    def prog():
        for op in tg2_launch_ops(
            ctx_base, shadow_base, 0, 0x11, SpecialOpcode.COMPARE_AND_SWAP, [3, 8]
        ):
            result = yield op
        got.append(result)

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [3]
    assert rig.node(1).backend.peek(0) == 8


def test_tg2_wrong_key_is_rejected_with_protection_event(rig):
    """§2.2.5: 'Only processes that know the key that corresponds to a
    specific context can write physical addresses into that
    context.'"""
    setup_context(rig, node=0, ctx_id=1, key=0x777)
    space = rig.space(0)
    shadow_base = rig.map_shadow_remote(space, vpage=0, home=1)
    protections = []

    def handler(payload):
        protections.append(payload)
        yield 0

    rig.node(0).interrupts.register("hib_protection", handler)

    def prog():
        yield Store(shadow_base, Reg.shadow_argument(1, 0x666))  # wrong key

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(0).hib.contexts[1].addresses == []
    assert len(protections) == 1


def test_tg2_unassigned_context_rejects_shadow_stores(rig):
    space = rig.space(0)
    shadow_base = rig.map_shadow_remote(space, vpage=0, home=1)

    def prog():
        yield Store(shadow_base, Reg.shadow_argument(3, 0x0))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(0).hib.contexts[3].addresses == []


def test_tg2_out_of_range_context_id_ignored(rig):
    space = rig.space(0)
    shadow_base = rig.map_shadow_remote(space, vpage=0, home=1)
    n_contexts = len(rig.node(0).hib.contexts)

    def prog():
        yield Store(shadow_base, Reg.shadow_argument(n_contexts + 1, 0))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    events = rig.tracer.select("protection", node=0)
    assert len(events) == 1


def test_tg2_launch_survives_preemption(rig):
    """§2.2.4: 'If an application gets interrupted while launching a
    special operation, the Telegraphos contexts preserve their
    contents, so that the special operation will be launched when the
    application is resumed.'

    Program A is preempted mid-launch; program B runs (using its *own*
    context) to completion; A resumes and its launch still succeeds.
    """
    rig.node(1).backend.poke(0x0, 100)    # A's target
    rig.node(1).backend.poke(0x40, 200)   # B's target
    setup_context(rig, node=0, ctx_id=0, key=0xAAAAA)
    setup_context(rig, node=0, ctx_id=1, key=0xBBBBB)

    space_a = rig.space(0)
    ctx_base_a = rig.map_context_page(space_a, vpage=0, ctx_id=0)
    shadow_a = rig.map_shadow_remote(space_a, vpage=1, home=1)

    space_b = rig.space(0)
    ctx_base_b = rig.map_context_page(space_b, vpage=0, ctx_id=1)
    shadow_b = rig.map_shadow_remote(space_b, vpage=1, home=1)

    results = {}

    def prog_a():
        yield Store(ctx_base_a + Reg.CTX_OPCODE, SpecialOpcode.FETCH_AND_ADD.value)
        yield Store(ctx_base_a + Reg.CTX_OPERAND0, 1)
        yield Store(shadow_a, Reg.shadow_argument(0, 0xAAAAA))
        # <-- preemption lands in this window (see schedule below)
        yield Think(20_000)
        results["a"] = yield Load(ctx_base_a + Reg.CTX_GO)

    def prog_b():
        for op in tg2_launch_ops(
            ctx_base_b, shadow_b + 0x40, 1, 0xBBBBB, SpecialOpcode.FETCH_AND_ADD, [2]
        ):
            result = yield op
        results["b"] = result

    cpu = rig.node(0).cpu
    ctx_a = rig.run_on(0, prog_a(), space_a, name="a")
    ctx_b = rig.run_on(0, prog_b(), space_b, name="b")
    # Preempt A for B after its shadow store, before its GO.
    rig.sim.schedule(5_000, cpu.switch_to, ctx_b)
    rig.run_all(ctx_a, ctx_b)
    assert results["b"] == 200
    assert results["a"] == 100
    assert rig.node(1).backend.peek(0x0) == 101
    assert rig.node(1).backend.peek(0x40) == 202


def test_tg2_context_status_counts_latched_addresses(rig):
    setup_context(rig, node=0, ctx_id=0, key=0x1)
    space = rig.space(0)
    ctx_base = rig.map_context_page(space, vpage=0, ctx_id=0)
    shadow_base = rig.map_shadow_remote(space, vpage=1, home=1)
    got = []

    def prog():
        got.append((yield Load(ctx_base + Reg.CTX_STATUS)))
        yield Store(shadow_base, Reg.shadow_argument(0, 0x1))
        got.append((yield Load(ctx_base + Reg.CTX_STATUS)))

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert got == [0, 1]


def test_tg2_remote_copy_via_context(rig):
    rig.node(1).backend.poke(0x60, 909)
    setup_context(rig, node=0, ctx_id=0, key=0x5)
    space = rig.space(0)
    ctx_base = rig.map_context_page(space, vpage=0, ctx_id=0)
    shadow_remote = rig.map_shadow_remote(space, vpage=1, home=1)
    # Shadow of the local MPM destination page.
    from repro.machine import PageTableEntry

    space.map_page(
        2, PageTableEntry(rig.amap.shadow(rig.amap.mpm(rig.amap.page_base(4))))
    )
    shadow_local = 2 * rig.amap.page_bytes
    from repro.machine import Fence

    def prog():
        yield Store(ctx_base + Reg.CTX_OPCODE, SpecialOpcode.REMOTE_COPY.value)
        yield Store(shadow_remote + 0x60, Reg.shadow_argument(0, 0x5))
        yield Store(shadow_local + 0x8, Reg.shadow_argument(0, 0x5))
        yield Store(ctx_base + Reg.CTX_GO, 0)  # non-blocking GO
        yield Fence()

    ctx = rig.run_on(0, prog(), space)
    rig.run_all(ctx)
    assert rig.node(0).backend.peek(4 * rig.amap.page_bytes + 0x8) == 909
