"""Unit tests for the HIB's standalone blocks: outstanding-op
counters, page access counters, multicast table, atomic ALU,
launch state machines, register map."""

import pytest

from repro.hib import (
    AtomicOp,
    LaunchError,
    MulticastTable,
    OutstandingOps,
    OutstandingUnderflowError,
    PageAccessCounters,
    Reg,
    SpecialOpcode,
    TelegraphosContext,
)
from repro.hib.atomic import apply_atomic, operand_count
from repro.hib.special import SpecialModeTg1


# -- OutstandingOps -------------------------------------------------------


def test_outstanding_basic_counting():
    ops = OutstandingOps(0)
    ops.increment()
    ops.increment(2)
    assert ops.count == 3
    ops.decrement()
    assert ops.count == 2
    assert ops.total_issued == 3
    assert ops.max_outstanding == 3


def test_outstanding_underflow_raises_dedicated_error():
    # The dedicated type (a RuntimeError subclass, so legacy handlers
    # still fire) lets the fault harness distinguish a double-counted
    # completion — what a duplicated ack would cause without sequence
    # dedup — from any other runtime failure.
    ops = OutstandingOps(3)
    ops.increment()
    ops.decrement()
    with pytest.raises(OutstandingUnderflowError, match="node 3.*underflow"):
        ops.decrement()
    assert issubclass(OutstandingUnderflowError, RuntimeError)
    assert ops.count == 0  # the failed decrement must not corrupt state


def test_outstanding_underflow_on_bulk_decrement():
    ops = OutstandingOps(0)
    ops.increment(2)
    with pytest.raises(OutstandingUnderflowError):
        ops.decrement(3)
    assert ops.count == 2


def test_destination_log_accounting():
    ops = OutstandingOps(0)
    log = ops.destination(2)
    assert ops.destination(2) is log  # one log per peer
    log.sent += 3
    log.acked += 2
    log.timeouts += 1
    assert ops.destinations_snapshot() == {
        2: {"sent": 3, "acked": 2, "nacks_received": 0,
            "retransmits": 0, "timeouts": 1},
    }


def test_fence_immediate_when_quiescent():
    ops = OutstandingOps(0)
    assert ops.fence().done


def test_fence_resolves_at_zero():
    ops = OutstandingOps(0)
    ops.increment(2)
    fence = ops.fence()
    ops.decrement()
    assert not fence.done
    ops.decrement()
    assert fence.done


def test_negative_increment_rejected():
    ops = OutstandingOps(0)
    with pytest.raises(ValueError):
        ops.increment(-1)


# -- PageAccessCounters ----------------------------------------------------


def test_counter_decrements_and_alarms():
    alarms = []
    pac = PageAccessCounters(alarm=lambda page, kind: alarms.append((page, kind)))
    pac.set_counter((1, 0), "write", 2)
    pac.on_access((1, 0), "write")
    assert pac.read_counter((1, 0), "write") == 1
    assert alarms == []
    pac.on_access((1, 0), "write")
    assert alarms == [((1, 0), "write")]
    # Saturated at zero: further accesses don't alarm again.
    pac.on_access((1, 0), "write")
    assert alarms == [((1, 0), "write")]
    assert pac.read_counter((1, 0), "write") == 0


def test_counters_are_per_kind():
    pac = PageAccessCounters()
    pac.set_counter((0, 3), "read", 5)
    pac.on_access((0, 3), "write")
    assert pac.read_counter((0, 3), "read") == 5


def test_counter_width_enforced():
    pac = PageAccessCounters(counter_bits=16)
    with pytest.raises(ValueError):
        pac.set_counter((0, 0), "read", 1 << 16)


def test_counter_table_capacity():
    pac = PageAccessCounters(max_pages=1)
    pac.set_counter((0, 0), "read", 1)
    with pytest.raises(RuntimeError, match="full"):
        pac.set_counter((0, 1), "read", 1)


def test_access_totals_and_hottest():
    pac = PageAccessCounters()
    for _ in range(5):
        pac.on_access((0, 1), "read")
    pac.on_access((0, 2), "write")
    assert pac.total_accesses((0, 1)) == 5
    assert pac.hottest_pages(1) == [((0, 1), 5)]


def test_counter_clear():
    pac = PageAccessCounters()
    pac.set_counter((0, 0), "read", 3)
    pac.clear((0, 0))
    assert pac.read_counter((0, 0), "read") == 0


def test_bad_kind_rejected():
    pac = PageAccessCounters()
    with pytest.raises(ValueError):
        pac.set_counter((0, 0), "exec", 1)


# -- MulticastTable --------------------------------------------------------


def test_multicast_map_and_destinations():
    table = MulticastTable()
    table.map_out(3, node=1, remote_page=7)
    table.map_out(3, node=2, remote_page=9)
    assert table.destinations(3) == [(1, 7), (2, 9)]
    assert table.is_mapped(3)
    assert table.entries_used == 2


def test_multicast_duplicate_is_noop():
    table = MulticastTable()
    table.map_out(0, 1, 1)
    table.map_out(0, 1, 1)
    assert table.entries_used == 1


def test_multicast_capacity_enforced():
    table = MulticastTable(capacity_entries=1)
    table.map_out(0, 1, 1)
    with pytest.raises(RuntimeError, match="full"):
        table.map_out(0, 2, 2)


def test_multicast_unmap():
    table = MulticastTable()
    table.map_out(0, 1, 1)
    table.map_out(0, 2, 2)
    table.unmap(0, 1, 1)
    assert table.destinations(0) == [(2, 2)]
    table.unmap(0, 9, 9)  # absent: quiet
    table.unmap_page(0)
    assert not table.is_mapped(0)
    assert table.entries_used == 0


def test_multicast_failed_map_leaves_no_phantom_mapping():
    """Regression: a capacity-rejected ``map_out`` used to create the
    page's (empty) destination list before the check, leaving a
    phantom mapping that polluted ``is_mapped``/``mapped_pages``."""
    table = MulticastTable(capacity_entries=2)
    table.map_out(0, 1, 1)
    table.map_out(0, 2, 2)
    with pytest.raises(RuntimeError, match="full"):
        table.map_out(5, 1, 1)
    assert not table.is_mapped(5)
    assert table.mapped_pages() == [0]
    assert table.entries_used == 2


def test_multicast_fill_unmap_refill_cycle():
    """Capacity accounting survives fill-to-capacity / unmap_page /
    refill — entries freed by ``unmap_page`` are reusable."""
    table = MulticastTable(capacity_entries=4)
    for dest in range(4):
        table.map_out(dest % 2, node=dest + 1, remote_page=dest)
    assert table.entries_used == 4
    with pytest.raises(RuntimeError, match="full"):
        table.map_out(3, 9, 9)
    table.unmap_page(0)
    assert table.entries_used == 2
    table.map_out(3, 9, 9)
    table.map_out(3, 10, 10)
    assert table.entries_used == 4
    assert table.mapped_pages() == [1, 3]
    # A duplicate at capacity stays a quiet no-op (no phantom growth).
    table.map_out(3, 9, 9)
    assert table.entries_used == 4


# -- Atomic ALU --------------------------------------------------------------


def test_fetch_and_store():
    assert apply_atomic(AtomicOp.FETCH_AND_STORE, 5, 9) == (5, 9)


def test_fetch_and_add():
    assert apply_atomic(AtomicOp.FETCH_AND_ADD, 5, 3) == (5, 8)


def test_compare_and_swap_success_and_failure():
    assert apply_atomic(AtomicOp.COMPARE_AND_SWAP, 5, 5, 7) == (5, 7)
    assert apply_atomic(AtomicOp.COMPARE_AND_SWAP, 5, 4, 7) == (5, 5)


def test_operand_counts():
    assert operand_count(AtomicOp.COMPARE_AND_SWAP) == 2
    assert operand_count(AtomicOp.FETCH_AND_ADD) == 1


# -- SpecialOpcode -----------------------------------------------------------


def test_opcode_address_needs():
    assert SpecialOpcode.REMOTE_COPY.needed_addresses == 2
    assert SpecialOpcode.FETCH_AND_ADD.needed_addresses == 1
    assert SpecialOpcode.COMPARE_AND_SWAP.needed_operands == 2
    assert SpecialOpcode.REMOTE_COPY.needed_operands == 0
    assert SpecialOpcode.REMOTE_COPY.to_atomic() is None


# -- Telegraphos I special mode -----------------------------------------------


def test_tg1_collect_and_launch():
    sm = SpecialModeTg1()
    sm.arm(SpecialOpcode.FETCH_AND_ADD.value)
    sm.collect(0x1000, 3)
    opcode, addresses, operands = sm.take_launch()
    assert opcode is SpecialOpcode.FETCH_AND_ADD
    assert addresses == [0x1000]
    assert operands == [3]
    assert not sm.armed  # launch leaves special mode


def test_tg1_cas_two_stores_same_address():
    sm = SpecialModeTg1()
    sm.arm(SpecialOpcode.COMPARE_AND_SWAP.value)
    sm.collect(0x1000, 5)   # comparand
    sm.collect(0x1000, 9)   # new value
    opcode, addresses, operands = sm.take_launch()
    assert addresses == [0x1000]
    assert operands == [5, 9]


def test_tg1_copy_two_addresses():
    sm = SpecialModeTg1()
    sm.arm(SpecialOpcode.REMOTE_COPY.value)
    sm.collect(0x1000, 0)
    sm.collect(0x2000, 0)
    opcode, addresses, _ = sm.take_launch()
    assert addresses == [0x1000, 0x2000]


def test_tg1_unarmed_collect_rejected():
    sm = SpecialModeTg1()
    with pytest.raises(LaunchError):
        sm.collect(0x1000, 0)


def test_tg1_unarmed_trigger_rejected():
    sm = SpecialModeTg1()
    with pytest.raises(LaunchError):
        sm.take_launch()


def test_tg1_wrong_address_count_rejected():
    sm = SpecialModeTg1()
    sm.arm(SpecialOpcode.REMOTE_COPY.value)
    sm.collect(0x1000, 0)
    with pytest.raises(LaunchError, match="expected 2"):
        sm.take_launch()


def test_tg1_bad_opcode_rejected():
    sm = SpecialModeTg1()
    with pytest.raises(LaunchError):
        sm.arm(99)


def test_tg1_disarm_with_zero():
    sm = SpecialModeTg1()
    sm.arm(SpecialOpcode.FETCH_AND_ADD.value)
    sm.arm(0)
    assert not sm.armed


# -- Telegraphos II contexts -----------------------------------------------------


def test_context_register_file():
    ctx = TelegraphosContext(0)
    ctx.write_reg(Reg.CTX_OPCODE, SpecialOpcode.FETCH_AND_ADD.value)
    ctx.write_reg(Reg.CTX_OPERAND0, 4)
    assert ctx.read_reg(Reg.CTX_OPCODE) == SpecialOpcode.FETCH_AND_ADD.value
    assert ctx.read_reg(Reg.CTX_OPERAND0) == 4
    assert ctx.read_reg(Reg.CTX_STATUS) == 0
    ctx.latch_address(0x1000)
    assert ctx.read_reg(Reg.CTX_STATUS) == 1


def test_context_launch_clears_addresses_keeps_key():
    ctx = TelegraphosContext(0)
    ctx.assign(key=0x123)
    ctx.write_reg(Reg.CTX_OPCODE, SpecialOpcode.FETCH_AND_ADD.value)
    ctx.write_reg(Reg.CTX_OPERAND0, 1)
    ctx.latch_address(0x1000)
    opcode, addresses, operands = ctx.take_launch()
    assert opcode is SpecialOpcode.FETCH_AND_ADD
    assert addresses == [0x1000]
    assert operands == [1]
    assert ctx.key == 0x123
    assert ctx.read_reg(Reg.CTX_STATUS) == 0


def test_context_bad_opcode():
    ctx = TelegraphosContext(0)
    with pytest.raises(LaunchError):
        ctx.take_launch()


def test_context_unknown_registers():
    ctx = TelegraphosContext(0)
    with pytest.raises(LaunchError):
        ctx.write_reg(0x48, 1)
    with pytest.raises(LaunchError):
        ctx.read_reg(0x48)


def test_context_revoke():
    ctx = TelegraphosContext(0)
    ctx.assign(key=1)
    ctx.latch_address(0x1000)
    ctx.revoke()
    assert ctx.key is None
    assert ctx.addresses == []


def test_context_key_width_enforced():
    ctx = TelegraphosContext(0)
    with pytest.raises(ValueError):
        ctx.assign(key=1 << Reg.KEY_BITS)


# -- Register map helpers -------------------------------------------------------


def test_shadow_argument_roundtrip():
    arg = Reg.shadow_argument(ctx_id=3, key=0x5A5A5)
    assert Reg.split_shadow_argument(arg) == (3, 0x5A5A5)


def test_shadow_argument_key_too_wide():
    with pytest.raises(ValueError):
        Reg.shadow_argument(0, 1 << Reg.KEY_BITS)


def test_context_page_offsets():
    page = 8192
    off = Reg.context_page_offset(2, page)
    assert Reg.split_context_offset(off + Reg.CTX_GO, page) == (2, Reg.CTX_GO)
    assert Reg.split_context_offset(0x100, page) is None
