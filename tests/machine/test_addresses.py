"""Unit and property tests for the physical address map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import AddressMap, Region


@pytest.fixture
def amap():
    return AddressMap()


def test_dram_roundtrip(amap):
    phys = amap.dram(0x1234)
    d = amap.decode(phys)
    assert d.region is Region.DRAM
    assert d.offset == 0x1234
    assert d.node is None
    assert not d.shadow


def test_remote_encodes_node_in_high_bits(amap):
    phys = amap.remote(5, 0x100)
    d = amap.decode(phys)
    assert d.region is Region.REMOTE
    assert d.node == 5
    assert d.offset == 0x100
    # Same offset, different node: differs only above the offset bits.
    other = amap.remote(6, 0x100)
    assert (phys ^ other) >> AddressMap.NODE_SHIFT != 0
    assert (phys ^ other) & AddressMap.OFFSET_MASK == 0


def test_hib_register_region(amap):
    d = amap.decode(amap.hib_register(0x40))
    assert d.region is Region.HIB
    assert d.offset == 0x40


def test_mpm_region(amap):
    d = amap.decode(amap.mpm(0x2000))
    assert d.region is Region.MPM
    assert d.offset == 0x2000


def test_shadow_differs_only_in_highest_bit(amap):
    """§2.2.4: 'An address differs from its shadow only in the
    highest bit.'"""
    phys = amap.remote(3, 0x888)
    shadow = amap.shadow(phys)
    assert shadow ^ phys == AddressMap.SHADOW_BIT
    assert amap.unshadow(shadow) == phys
    d = amap.decode(shadow)
    assert d.shadow
    assert d.region is Region.REMOTE
    assert d.node == 3
    assert d.offset == 0x888


def test_offset_bounds_checked(amap):
    with pytest.raises(ValueError):
        amap.remote(0, AddressMap.WINDOW_BYTES)
    with pytest.raises(ValueError):
        amap.dram(-1)


def test_node_bounds_checked(amap):
    with pytest.raises(ValueError):
        amap.remote(AddressMap.NODE_MASK + 1, 0)


def test_decode_out_of_range(amap):
    with pytest.raises(ValueError):
        amap.decode(1 << AddressMap.PHYS_BITS)
    with pytest.raises(ValueError):
        amap.decode(-1)


def test_word_alignment_helpers(amap):
    assert amap.word_aligned(0x13) == 0x10
    assert amap.is_word_aligned(0x14)
    assert not amap.is_word_aligned(0x15)


def test_page_helpers(amap):
    assert amap.page_of(0) == 0
    assert amap.page_of(8192) == 1
    assert amap.page_base(2) == 16384
    assert amap.page_offset(8200) == 8
    assert amap.same_page(0, 8191)
    assert not amap.same_page(8191, 8192)


@given(
    region=st.sampled_from([Region.DRAM, Region.HIB, Region.MPM]),
    offset=st.integers(min_value=0, max_value=AddressMap.OFFSET_MASK),
)
def test_property_encode_decode_roundtrip(region, offset):
    amap = AddressMap()
    encode = {
        Region.DRAM: amap.dram,
        Region.HIB: amap.hib_register,
        Region.MPM: amap.mpm,
    }[region]
    d = amap.decode(encode(offset))
    assert d.region is region
    assert d.offset == offset


@given(
    node=st.integers(min_value=0, max_value=AddressMap.NODE_MASK),
    offset=st.integers(min_value=0, max_value=AddressMap.OFFSET_MASK),
    shadowed=st.booleans(),
)
def test_property_remote_roundtrip_with_shadow(node, offset, shadowed):
    amap = AddressMap()
    phys = amap.remote(node, offset)
    if shadowed:
        phys = amap.shadow(phys)
    d = amap.decode(phys)
    assert d.node == node
    assert d.offset == offset
    assert d.shadow == shadowed
