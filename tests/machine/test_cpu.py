"""Unit tests for the CPU model (with a stub TurboChannel device)."""

import pytest

from repro.machine import (
    AddressMap,
    AddressSpace,
    Bus,
    CPU,
    Fence,
    Load,
    PageTableEntry,
    PalSequence,
    ProtectionViolation,
    Store,
    Think,
    WordMemory,
)
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


class StubIO:
    """Records TurboChannel traffic; fixed 100 ns per access."""

    def __init__(self):
        self.stores = []
        self.loads = []
        self.fences = 0
        self.load_values = {}

    def tc_store(self, phys, value):
        yield 100
        self.stores.append((phys, value))

    def tc_load(self, phys):
        yield 100
        self.loads.append(phys)
        return self.load_values.get(phys, 0)

    def tc_fence(self):
        yield 100
        self.fences += 1


def make_cpu():
    sim = Simulator()
    amap = AddressMap()
    dram = WordMemory(1 << 20, name="dram")
    membus = Bus(sim, "membus", DEFAULT_PARAMS.timing.membus_arb_ns)
    io = StubIO()
    cpu = CPU(sim, DEFAULT_PARAMS, 0, amap, dram, membus, io)
    return sim, cpu, amap, dram, io


def local_space(amap, pages=2, cacheable=False):
    space = AddressSpace(amap)
    for vpage in range(pages):
        space.map_page(
            vpage,
            PageTableEntry(amap.dram(vpage * amap.page_bytes), cacheable=cacheable),
        )
    return space


def run_program(sim, cpu, space, body, name="prog"):
    ctx = cpu.start_program(body, space, name)
    sim.run()
    return ctx


def test_store_then_load_local_dram():
    sim, cpu, amap, dram, _ = make_cpu()
    got = []

    def prog():
        yield Store(0x100, 42)
        got.append((yield Load(0x100)))

    run_program(sim, cpu, local_space(amap), prog())
    assert got == [42]
    assert dram.load_word(0x100) == 42


def test_think_costs_time():
    sim, cpu, amap, _, _ = make_cpu()

    def prog():
        yield Think(12345)

    run_program(sim, cpu, local_space(amap), prog())
    assert sim.now >= 12345


def test_remote_window_store_goes_to_io():
    sim, cpu, amap, _, io = make_cpu()
    space = AddressSpace(amap)
    space.map_page(0, PageTableEntry(amap.remote(3, 0)))

    def prog():
        yield Store(0x40, 7)

    run_program(sim, cpu, space, prog())
    assert io.stores == [(amap.remote(3, 0x40), 7)]


def test_remote_window_load_returns_io_value():
    sim, cpu, amap, _, io = make_cpu()
    space = AddressSpace(amap)
    space.map_page(0, PageTableEntry(amap.remote(3, 0)))
    io.load_values[amap.remote(3, 0x40)] = 99
    got = []

    def prog():
        got.append((yield Load(0x40)))

    run_program(sim, cpu, space, prog())
    assert got == [99]


def test_fence_reaches_io():
    sim, cpu, amap, _, io = make_cpu()

    def prog():
        yield Fence()

    run_program(sim, cpu, local_space(amap), prog())
    assert io.fences == 1


def test_unmapped_access_kills_program_without_handler():
    sim, cpu, amap, _, _ = make_cpu()
    caught = []

    def prog():
        try:
            yield Load(0x10_0000)  # vpage far outside the mapping
        except ProtectionViolation as err:
            caught.append(err)

    run_program(sim, cpu, local_space(amap, pages=1), prog())
    assert len(caught) == 1


def test_fault_handler_can_fix_and_retry():
    sim, cpu, amap, dram, _ = make_cpu()
    space = local_space(amap, pages=1)
    vaddr = amap.page_bytes + 4  # vpage 1, unmapped
    fixed = []

    def handler(ctx, fault):
        yield 1000  # OS fault-handling time
        space.map_page(1, PageTableEntry(amap.dram(amap.page_bytes)))
        fixed.append(fault.vaddr)
        return "retry"

    cpu.fault_handler = handler
    got = []

    def prog():
        yield Store(vaddr, 5)
        got.append((yield Load(vaddr)))

    run_program(sim, cpu, space, prog())
    assert fixed == [vaddr]
    assert got == [5]


def test_fault_handler_kill_throws_into_program():
    sim, cpu, amap, _, _ = make_cpu()

    def handler(ctx, fault):
        yield 10
        return "kill"

    cpu.fault_handler = handler
    outcome = []

    def prog():
        try:
            yield Load(0x100_000)
        except ProtectionViolation:
            outcome.append("killed")

    run_program(sim, cpu, local_space(amap, pages=1), prog())
    assert outcome == ["killed"]


def test_pal_sequence_returns_last_result():
    sim, cpu, amap, _, io = make_cpu()
    space = AddressSpace(amap)
    space.map_page(0, PageTableEntry(amap.hib_register(0)))
    io.load_values[amap.hib_register(0x8)] = 1234
    got = []

    def prog():
        result = yield PalSequence(
            [Store(0x0, 1), Store(0x4, 2), Load(0x8)]
        )
        got.append(result)

    run_program(sim, cpu, space, prog())
    assert got == [1234]
    assert io.stores == [(amap.hib_register(0), 1), (amap.hib_register(4), 2)]


def test_nested_pal_rejected():
    sim, cpu, amap, _, _ = make_cpu()
    sim.strict_failures = False

    def prog():
        yield PalSequence([PalSequence([Think(1)])])

    ctx = run_program(sim, cpu, local_space(amap), prog())
    assert isinstance(ctx.process.exception, RuntimeError)


def test_preemption_switches_between_programs():
    sim, cpu, amap, _, _ = make_cpu()
    space = local_space(amap)
    order = []

    def prog(tag, n):
        for _ in range(n):
            yield Think(100)
            order.append((tag, sim.now))

    ctx_a = cpu.start_program(prog("a", 3), space, "a")
    ctx_b = cpu.start_program(prog("b", 3), space, "b")
    # b starts parked; switch at t=150 and back at t=450.
    sim.schedule(150, cpu.switch_to, ctx_b)
    sim.schedule(450, cpu.switch_to, ctx_a)
    sim.run()
    tags = [t for t, _ in order]
    # a runs first, then b runs while a is parked, then a finishes.
    assert tags[0] == "a"
    assert "b" in tags
    assert order[-1][0] in ("a", "b")
    assert len(order) == 6


def test_pal_sequence_defers_preemption():
    sim, cpu, amap, _, _ = make_cpu()
    space = local_space(amap)
    order = []

    def prog_a():
        yield PalSequence([Think(100), Think(100), Think(100)])
        order.append(("a-pal-done", sim.now))

    def prog_b():
        yield Think(10)
        order.append(("b", sim.now))

    ctx_a = cpu.start_program(prog_a(), space, "a")
    ctx_b = cpu.start_program(prog_b(), space, "b")
    sim.schedule(50, cpu.switch_to, ctx_b)  # mid-PAL
    sim.run()
    # The switch was requested at t=50, mid-PAL; b must not execute
    # until the whole 300 ns PAL sequence has completed.
    b_times = [t for tag, t in order if tag == "b"]
    assert b_times and b_times[0] >= 300
    assert ("a-pal-done" in [tag for tag, _ in order])


def test_program_completion_hands_cpu_to_parked_program():
    sim, cpu, amap, _, _ = make_cpu()
    space = local_space(amap)
    done = []

    def prog(tag):
        yield Think(100)
        done.append(tag)

    cpu.start_program(prog("first"), space, "first")
    cpu.start_program(prog("second"), space, "second")
    sim.run()
    assert done == ["first", "second"]


def test_duplicate_program_name_rejected():
    sim, cpu, amap, _, _ = make_cpu()
    space = local_space(amap)

    def prog():
        yield Think(1)

    cpu.start_program(prog(), space, "p")
    with pytest.raises(ValueError):
        cpu.start_program(prog(), space, "p")


def test_cacheable_loads_hit_cache_second_time():
    sim, cpu, amap, _, _ = make_cpu()
    space = local_space(amap, cacheable=True)

    def prog():
        yield Store(0x100, 1)
        yield Load(0x100)
        yield Load(0x100)

    run_program(sim, cpu, space, prog())
    assert cpu.cache.hits >= 2  # write-allocate then two load hits


def test_unknown_op_rejected():
    sim, cpu, amap, _, _ = make_cpu()
    sim.strict_failures = False

    def prog():
        yield "bogus"

    ctx = run_program(sim, cpu, local_space(amap), prog())
    assert isinstance(ctx.process.exception, TypeError)


def test_program_stats_counted():
    sim, cpu, amap, _, _ = make_cpu()

    def prog():
        yield Store(0, 1)
        yield Load(0)
        yield Think(5)

    ctx = run_program(sim, cpu, local_space(amap), prog())
    assert ctx.stores == 1
    assert ctx.loads == 1
    assert ctx.ops_executed == 3
