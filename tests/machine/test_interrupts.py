"""Unit tests for the interrupt controller."""

from repro.machine import InterruptController
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


def make_controller():
    sim = Simulator()
    ic = InterruptController(sim, DEFAULT_PARAMS.timing, node_id=0)
    return sim, ic


def test_handler_runs_with_payload():
    sim, ic = make_controller()
    seen = []

    def handler(payload):
        seen.append((payload, sim.now))
        yield 0

    ic.register("alarm", handler)
    ic.post("alarm", {"page": 7})
    sim.run()
    assert len(seen) == 1
    assert seen[0][0] == {"page": 7}
    # Dispatch cost charged before the handler body runs.
    assert seen[0][1] >= DEFAULT_PARAMS.timing.os_interrupt_ns


def test_interrupts_serialised_fifo():
    sim, ic = make_controller()
    seen = []

    def handler(payload):
        yield 1000
        seen.append((payload, sim.now))

    ic.register("v", handler)
    for i in range(3):
        ic.post("v", i)
    sim.run()
    assert [p for p, _ in seen] == [0, 1, 2]
    # Each handler finishes before the next is dispatched.
    assert seen[1][1] - seen[0][1] >= 1000


def test_unregistered_vector_is_dropped_quietly():
    sim, ic = make_controller()
    ic.post("nobody-home")
    sim.run()
    assert ic.delivered == 1


def test_handler_replacement():
    sim, ic = make_controller()
    seen = []

    def old(payload):
        seen.append("old")
        yield 0

    def new(payload):
        seen.append("new")
        yield 0

    ic.register("v", old)
    ic.register("v", new)
    ic.post("v")
    sim.run()
    assert seen == ["new"]
