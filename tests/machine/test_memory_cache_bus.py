"""Unit tests for memory, cache, and bus models."""

import pytest

from repro.machine import Bus, DirectMappedCache, WordMemory
from repro.sim import Simulator


# -- WordMemory ----------------------------------------------------------


def test_memory_default_zero():
    mem = WordMemory(1024)
    assert mem.load_word(0) == 0
    assert mem.load_word(1020) == 0


def test_memory_store_load():
    mem = WordMemory(1024)
    mem.store_word(8, 0xDEAD)
    assert mem.load_word(8) == 0xDEAD


def test_memory_masks_to_32_bits():
    mem = WordMemory(64)
    mem.store_word(0, 0x1_0000_0001)
    assert mem.load_word(0) == 1


def test_memory_unaligned_rejected():
    mem = WordMemory(64)
    with pytest.raises(ValueError, match="unaligned"):
        mem.load_word(2)
    with pytest.raises(ValueError):
        mem.store_word(5, 1)


def test_memory_bounds_checked():
    mem = WordMemory(64)
    with pytest.raises(ValueError):
        mem.load_word(64)
    with pytest.raises(ValueError):
        mem.store_word(-4, 0)


def test_memory_bad_size():
    with pytest.raises(ValueError):
        WordMemory(0)
    with pytest.raises(ValueError):
        WordMemory(10)  # not a word multiple


def test_memory_copy_words():
    mem = WordMemory(256)
    for i in range(4):
        mem.store_word(i * 4, i + 1)
    mem.copy_words(0, 64, 4)
    assert mem.snapshot_range(64, 4) == (1, 2, 3, 4)


def test_memory_written_words_sorted():
    mem = WordMemory(256)
    mem.store_word(8, 2)
    mem.store_word(0, 1)
    assert list(mem.written_words()) == [(0, 1), (8, 2)]


def test_memory_access_counters():
    mem = WordMemory(64)
    mem.store_word(0, 1)
    mem.load_word(0)
    mem.load_word(4)
    assert mem.writes == 1
    assert mem.reads == 2


# -- DirectMappedCache ---------------------------------------------------


def test_cache_miss_then_hit():
    cache = DirectMappedCache(n_lines=4)
    assert not cache.lookup(0)
    assert cache.lookup(0)
    assert cache.hits == 1
    assert cache.misses == 1


def test_cache_conflict_eviction():
    cache = DirectMappedCache(n_lines=4)
    cache.lookup(0)          # word 0 -> line 0
    cache.lookup(4 * 4)      # word 4 -> line 0, evicts
    assert not cache.lookup(0)


def test_cache_write_allocate():
    cache = DirectMappedCache(n_lines=4)
    assert not cache.touch_write(0)
    assert cache.lookup(0)


def test_cache_invalidate_all():
    cache = DirectMappedCache(n_lines=4)
    cache.lookup(0)
    cache.invalidate_all()
    assert not cache.lookup(0)


def test_cache_power_of_two_required():
    with pytest.raises(ValueError):
        DirectMappedCache(n_lines=3)


def test_cache_hit_rate():
    cache = DirectMappedCache(n_lines=4)
    cache.lookup(0)
    cache.lookup(0)
    cache.lookup(0)
    assert cache.hit_rate == pytest.approx(2 / 3)
    assert DirectMappedCache(4).hit_rate == 0.0


# -- Bus -----------------------------------------------------------------


def test_bus_transact_charges_arb_and_occupancy():
    sim = Simulator()
    bus = Bus(sim, "mb", arb_ns=40)
    done = []

    def master():
        yield from bus.transact(100)
        done.append(sim.now)

    sim.spawn(master())
    sim.run()
    assert done == [140]
    assert bus.transactions == 1
    assert bus.busy_ns == 100


def test_bus_serialises_masters_fifo():
    sim = Simulator()
    bus = Bus(sim, "mb", arb_ns=10)
    done = []

    def master(tag):
        yield from bus.transact(100)
        done.append((tag, sim.now))

    sim.spawn(master("a"))
    sim.spawn(master("b"))
    sim.run()
    assert done == [("a", 110), ("b", 220)]


def test_bus_release_without_owner():
    sim = Simulator()
    bus = Bus(sim, "mb", arb_ns=10)
    with pytest.raises(RuntimeError):
        bus.release()


def test_bus_queue_depth_and_idle():
    sim = Simulator()
    bus = Bus(sim, "mb", arb_ns=10)
    assert bus.idle
    bus.acquire("x")
    assert not bus.idle
    bus.acquire("y")
    assert bus.queue_depth == 1
    bus.release()
    assert bus.queue_depth == 0


def test_bus_explicit_acquire_release_cycle():
    sim = Simulator()
    bus = Bus(sim, "mb", arb_ns=5)
    order = []

    def holder():
        yield bus.acquire("h")
        order.append(("h", sim.now))
        yield 50
        bus.release()

    def waiter():
        yield 1
        yield bus.acquire("w")
        order.append(("w", sim.now))
        bus.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert order == [("h", 5), ("w", 60)]
