"""Unit tests for page tables, TLB, and protection."""

import pytest

from repro.machine import (
    MMU,
    AddressMap,
    AddressSpace,
    PageFault,
    PageTableEntry,
    TLB,
)


@pytest.fixture
def amap():
    return AddressMap()


def make_space(amap, vpage=0, phys_base=None, **perm):
    space = AddressSpace(amap, name="test")
    space.map_page(vpage, PageTableEntry(phys_base or amap.dram(0), **perm))
    return space


def test_translate_maps_offset(amap):
    space = make_space(amap, vpage=2, phys_base=amap.dram(0x4000))
    vaddr = 2 * amap.page_bytes + 0x10
    assert space.physical(vaddr, is_write=False) == amap.dram(0x4010)


def test_unmapped_page_faults(amap):
    space = AddressSpace(amap)
    with pytest.raises(PageFault, match="not mapped"):
        space.translate(0, is_write=False)


def test_write_to_readonly_faults(amap):
    space = make_space(amap, writable=False)
    with pytest.raises(PageFault, match="read-only"):
        space.translate(0, is_write=True)
    # Reads still allowed.
    space.translate(0, is_write=False)


def test_unreadable_page_faults(amap):
    space = make_space(amap, readable=False)
    with pytest.raises(PageFault, match="unreadable"):
        space.translate(4, is_write=False)


def test_protect_page_changes_permissions(amap):
    space = make_space(amap)
    space.protect_page(0, writable=False)
    with pytest.raises(PageFault):
        space.translate(0, is_write=True)
    space.protect_page(0, writable=True)
    space.translate(0, is_write=True)


def test_protect_unmapped_page_raises(amap):
    space = AddressSpace(amap)
    with pytest.raises(KeyError):
        space.protect_page(0, writable=False)


def test_unmap_page(amap):
    space = make_space(amap)
    space.unmap_page(0)
    with pytest.raises(PageFault):
        space.translate(0, is_write=False)


def test_version_bumps_on_changes(amap):
    space = AddressSpace(amap)
    v0 = space.version
    space.map_page(0, PageTableEntry(amap.dram(0)))
    assert space.version > v0
    v1 = space.version
    space.protect_page(0, writable=False)
    assert space.version > v1


def test_mapped_vpages(amap):
    space = AddressSpace(amap)
    space.map_page(3, PageTableEntry(amap.dram(0)))
    space.map_page(1, PageTableEntry(amap.dram(8192)))
    assert space.mapped_vpages() == [1, 3]


def test_shared_id_annotation(amap):
    space = AddressSpace(amap)
    entry = PageTableEntry(amap.remote(2, 0), shared_id=(2, 0))
    space.map_page(0, entry)
    assert space.entry_for(0).shared_id == (2, 0)


# -- TLB -----------------------------------------------------------------


def test_tlb_hit_after_fill():
    tlb = TLB(capacity=4)
    assert not tlb.access(0, version=1)
    assert tlb.access(0, version=1)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_tlb_version_change_misses():
    """A page-table change (new version) invalidates cached entries —
    models TLB shootdown on map/protect changes."""
    tlb = TLB(capacity=4)
    tlb.access(0, version=1)
    assert not tlb.access(0, version=2)


def test_tlb_lru_eviction():
    tlb = TLB(capacity=2)
    tlb.access(0, 1)
    tlb.access(1, 1)
    tlb.access(0, 1)      # refresh 0; LRU is now 1
    tlb.access(2, 1)      # evicts 1
    assert tlb.access(0, 1)
    assert not tlb.access(1, 1)


def test_tlb_flush():
    tlb = TLB(capacity=4)
    tlb.access(0, 1)
    tlb.flush()
    assert not tlb.access(0, 1)


def test_tlb_capacity_validation():
    with pytest.raises(ValueError):
        TLB(capacity=0)


def test_tlb_hit_rate():
    tlb = TLB(capacity=4)
    assert tlb.hit_rate == 0.0
    tlb.access(0, 1)
    tlb.access(0, 1)
    assert tlb.hit_rate == 0.5


# -- MMU ------------------------------------------------------------------


def test_mmu_requires_active_space(amap):
    mmu = MMU(amap)
    with pytest.raises(RuntimeError):
        mmu.translate(0, is_write=False)


def test_mmu_translate_and_tlb(amap):
    mmu = MMU(amap)
    space = make_space(amap)
    mmu.activate(space)
    phys, pte, hit = mmu.translate(0x10, is_write=False)
    assert phys == amap.dram(0x10)
    assert not hit
    _, _, hit2 = mmu.translate(0x14, is_write=False)
    assert hit2  # same page, same version


def test_mmu_context_switch_flushes_tlb(amap):
    mmu = MMU(amap)
    a = make_space(amap)
    b = make_space(amap)
    mmu.activate(a)
    mmu.translate(0, is_write=False)
    mmu.activate(b)
    _, _, hit = mmu.translate(0, is_write=False)
    assert not hit


def test_mmu_reactivating_same_space_keeps_tlb(amap):
    mmu = MMU(amap)
    a = make_space(amap)
    mmu.activate(a)
    mmu.translate(0, is_write=False)
    mmu.activate(a)
    _, _, hit = mmu.translate(0, is_write=False)
    assert hit
