"""Integration and property tests for the assembled fabric.

These tests exercise the §2.1 switch-network properties end to end:
packets delivered to the right hosts, per-(src, dst) in-order delivery,
back-pressure, and no deadlock under all-to-all load on every topology.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Fabric, Packet, PacketKind
from repro.network import topology as T
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


def build(topo):
    sim = Simulator()
    fabric = Fabric(sim, DEFAULT_PARAMS, topo)
    return sim, fabric


def write_packet(src, dst, seq):
    return Packet(
        PacketKind.WRITE_REQ,
        src,
        dst,
        DEFAULT_PARAMS.packets.write_request,
        address=seq,
        value=seq,
    )


def drain(sim, fabric, node, out, count):
    def consumer():
        port = fabric.port(node)
        for _ in range(count):
            out.append((yield port.receive()))

    return sim.spawn(consumer(), name=f"drain{node}")


def test_single_switch_delivery():
    sim, fabric = build(T.star(2))
    received = []
    proc = drain(sim, fabric, 1, received, 1)

    def sender():
        yield fabric.port(0).send(write_packet(0, 1, 0))

    sim.spawn(sender())
    sim.run_until_done([proc])
    assert len(received) == 1
    assert received[0].dst == 1


def test_multi_hop_delivery():
    sim, fabric = build(T.chain(3, 1))
    received = []
    proc = drain(sim, fabric, 2, received, 1)

    def sender():
        yield fabric.port(0).send(write_packet(0, 2, 0))

    sim.spawn(sender())
    sim.run_until_done([proc])
    assert received[0].dst == 2
    # Two switch hops were traversed (chain 0-1-2).
    assert fabric.total_packets_routed >= 3


def test_port_unknown_host():
    _, fabric = build(T.star(2))
    with pytest.raises(KeyError):
        fabric.port(99)


def test_in_order_delivery_same_pair():
    sim, fabric = build(T.chain(2, 1))
    received = []
    n = 50
    proc = drain(sim, fabric, 1, received, n)

    def sender():
        for i in range(n):
            yield fabric.port(0).send(write_packet(0, 1, i))

    sim.spawn(sender())
    sim.run_until_done([proc])
    assert [p.address for p in received] == list(range(n))


def test_multi_hop_latency_exceeds_single_hop():
    def one_way_latency(topo, src, dst):
        sim, fabric = build(topo)
        received = []
        proc = drain(sim, fabric, dst, received, 1)

        def sender():
            yield fabric.port(src).send(write_packet(src, dst, 0))

        sim.spawn(sender())
        sim.run_until_done([proc])
        return sim.now

    near = one_way_latency(T.chain(3, 1), 0, 1)
    far = one_way_latency(T.chain(3, 1), 0, 2)
    assert far > near


def test_all_to_all_no_deadlock_and_complete_delivery():
    topo = T.mesh2d(2, 2, hosts_per_switch=1)
    sim, fabric = build(topo)
    hosts = topo.hosts
    per_pair = 5
    expected = {h: per_pair * (len(hosts) - 1) for h in hosts}
    received = {h: [] for h in hosts}
    drains = [drain(sim, fabric, h, received[h], expected[h]) for h in hosts]

    def sender(src):
        for i in range(per_pair):
            for dst in hosts:
                if dst != src:
                    yield fabric.port(src).send(write_packet(src, dst, i))

    for h in hosts:
        sim.spawn(sender(h), name=f"send{h}")
    sim.run_until_done(drains, limit_ns=10**10)
    for h in hosts:
        assert len(received[h]) == expected[h]


@given(
    topo_name=st.sampled_from(["star", "chain", "ring", "mesh"]),
    n_hosts=st.integers(min_value=2, max_value=6),
    data=st.data(),
)
@settings(max_examples=12, deadline=None)
def test_property_in_order_per_source(topo_name, n_hosts, data):
    """For any topology and any traffic pattern, each receiver sees
    each sender's packets in injection order (§2.1 in-order claim)."""
    topo = T.by_name(topo_name, n_hosts)
    sim, fabric = build(topo)
    hosts = topo.hosts
    # Random small traffic matrix.
    flows = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(hosts),
                st.sampled_from(hosts),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=12,
        )
    )
    counts = {}
    for src, dst in flows:
        counts[(src, dst)] = counts.get((src, dst), 0) + 1

    received = {h: [] for h in hosts}
    expect_per_host = {h: 0 for h in hosts}
    for (_src, dst), c in counts.items():
        expect_per_host[dst] += c
    drains = [
        drain(sim, fabric, h, received[h], expect_per_host[h])
        for h in hosts
        if expect_per_host[h]
    ]

    def sender(src, dst, count):
        for i in range(count):
            yield fabric.port(src).send(write_packet(src, dst, i))

    for (src, dst), c in counts.items():
        sim.spawn(sender(src, dst, c))
    sim.run_until_done(drains, limit_ns=10**10)

    for h in hosts:
        per_source = {}
        for pkt in received[h]:
            per_source.setdefault(pkt.src, []).append(pkt.address)
        for src, seqs in per_source.items():
            assert seqs == sorted(seqs), (
                f"out-of-order delivery {src}->{h}: {seqs}"
            )


def test_link_stats_exposed():
    sim, fabric = build(T.star(2))
    received = []
    proc = drain(sim, fabric, 1, received, 1)

    def sender():
        yield fabric.port(0).send(write_packet(0, 1, 0))

    sim.spawn(sender())
    sim.run_until_done([proc])
    sim.run()  # let link bookkeeping events drain
    stats = fabric.link_stats()
    carried = sum(s["packets"] for s in stats.values())
    assert carried == 2  # host->switch plus switch->host
