"""Unit tests for the link model."""

import pytest

from repro.network.link import Link, connect
from repro.network.packet import Packet, PacketKind
from repro.params import DEFAULT_PARAMS
from repro.sim import BoundedQueue, Simulator


def make_packet(src=0, dst=1, size=20, **kw):
    return Packet(PacketKind.WRITE_REQ, src, dst, size, **kw)


def setup_link(src_cap=8, dst_cap=8):
    sim = Simulator()
    timing = DEFAULT_PARAMS.timing
    src = BoundedQueue(src_cap, name="src")
    dst = BoundedQueue(dst_cap, name="dst")
    link = Link(sim, timing, src, dst)
    return sim, timing, src, dst, link


def test_packet_arrives_after_serialization_and_propagation():
    sim, timing, src, dst, _ = setup_link()
    pkt = make_packet(size=20)
    arrivals = []

    def consumer():
        got = yield dst.get()
        arrivals.append((sim.now, got))

    sim.spawn(consumer())
    src.try_put(pkt)
    sim.run()
    expected = timing.serialization_ns(20) + timing.link_prop_ns
    assert arrivals == [(expected, pkt)]


def test_serialization_scales_with_size():
    timing = DEFAULT_PARAMS.timing
    assert timing.serialization_ns(40) == 2 * timing.serialization_ns(20)


def test_link_preserves_fifo_order():
    sim, _, src, dst, _ = setup_link()
    packets = [make_packet(size=10 + i) for i in range(5)]
    got = []

    def consumer():
        for _ in packets:
            got.append((yield dst.get()))

    sim.spawn(consumer())
    for pkt in packets:
        assert src.try_put(pkt)
    sim.run()
    assert got == packets


def test_backpressure_stalls_source_drain():
    """With a 1-deep destination and no consumer, the link parks once
    its pipeline (destination + wire stage + serializer) is full and
    the source queue retains the rest."""
    sim, _, src, dst, link = setup_link(src_cap=5, dst_cap=1)
    for _ in range(5):
        src.try_put(make_packet(size=10))
    sim.run(until=1_000_000)
    assert len(dst) == 1
    assert link.packets_carried == 1
    # The pipeline absorbs four packets (dst buffer, propagation stage,
    # wire queue, serializer in flight); the source retains the fifth.
    assert len(src) == 1


def test_backpressure_releases_when_consumer_drains():
    sim, _, src, dst, link = setup_link(src_cap=4, dst_cap=1)
    for _ in range(3):
        src.try_put(make_packet(size=10))
    got = []

    def slow_consumer():
        for _ in range(3):
            got.append((yield dst.get()))
            yield 10_000

    sim.spawn(slow_consumer())
    sim.run()
    assert len(got) == 3
    assert link.packets_carried == 3


def test_link_statistics():
    sim, _, src, dst, link = setup_link()

    def consumer():
        yield dst.get()
        yield dst.get()

    sim.spawn(consumer())
    src.try_put(make_packet(size=10))
    src.try_put(make_packet(size=30))
    sim.run()
    assert link.packets_carried == 2
    assert link.bytes_carried == 40
    assert link.utilization_ns == DEFAULT_PARAMS.timing.serialization_ns(
        10
    ) + DEFAULT_PARAMS.timing.serialization_ns(30)


def test_connect_names_link():
    sim = Simulator()
    src = BoundedQueue(2, name="a")
    dst = BoundedQueue(2, name="b")
    link = connect(sim, DEFAULT_PARAMS.timing, src, dst)
    assert link.name == "a->b"


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(PacketKind.WRITE_REQ, 0, 0, 10)
    with pytest.raises(ValueError):
        Packet(PacketKind.WRITE_REQ, 0, 1, 0)


def test_packet_reply_to():
    pkt = make_packet(src=3, dst=7)
    assert pkt.reply_to() == 3


def test_packet_ids_unique():
    a, b = make_packet(), make_packet()
    assert a.pid != b.pid
