"""Unit and property tests for route computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import topology as T
from repro.network.routing import (
    compute_routes,
    route_length,
    spanning_tree,
    tree_path,
)


def test_spanning_tree_covers_all_switches():
    topo = T.mesh2d(3, 3)
    parent = spanning_tree(topo)
    assert set(parent) == set(topo.switch_ids)
    roots = [s for s, p in parent.items() if s == p]
    assert len(roots) == 1


def test_tree_path_endpoints():
    topo = T.chain(4, 1)
    parent = spanning_tree(topo)
    path = tree_path(parent, 0, 3)
    assert path == [0, 1, 2, 3]
    assert tree_path(parent, 2, 2) == [2]


def test_routes_deliver_locally_on_same_switch():
    topo = T.star(3)
    tables = compute_routes(topo)
    assert tables[0][1] == ("host", 1)


def test_routes_forward_towards_destination():
    topo = T.chain(3, 1)
    tables = compute_routes(topo)
    # Host 2 lives on switch 2; switch 0 must forward via switch 1.
    assert tables[0][2] == ("switch", 1)
    assert tables[1][2] == ("switch", 2)
    assert tables[2][2] == ("host", 2)


def test_route_length_same_switch_is_one():
    topo = T.star(4)
    assert route_length(topo, 0, 3) == 1


def test_route_length_chain():
    topo = T.chain(3, 1)
    assert route_length(topo, 0, 2) == 3


def test_ring_routes_avoid_one_edge_consistently():
    """Tree routing on a ring uses the spanning tree only, so at least
    one ring edge carries no routes — the deadlock-freedom tradeoff."""
    topo = T.ring(4, 1)
    tables = compute_routes(topo)
    used_edges = set()
    for sw, table in tables.items():
        for hop_kind, hop in table.values():
            if hop_kind == "switch":
                used_edges.add(T.Topology._norm_edge(sw, hop))
    assert len(used_edges) < len(topo.switch_edges)


def _routes_are_loop_free(topo):
    tables = compute_routes(topo)
    for src in topo.hosts:
        for dst in topo.hosts:
            if src == dst:
                continue
            sw = topo.host_attachment[src]
            seen = set()
            while True:
                assert sw not in seen, "routing loop detected"
                seen.add(sw)
                kind, hop = tables[sw][dst]
                if kind == "host":
                    assert hop == dst
                    break
                sw = hop
            assert len(seen) <= len(topo.switch_ids)


@given(
    rows=st.integers(min_value=1, max_value=3),
    cols=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_mesh_routes_loop_free(rows, cols):
    _routes_are_loop_free(T.mesh2d(rows, cols, hosts_per_switch=1))


@given(
    n_switches=st.integers(min_value=3, max_value=6),
    hosts_per=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_ring_routes_loop_free(n_switches, hosts_per):
    _routes_are_loop_free(T.ring(n_switches, hosts_per))


def test_channel_dependency_acyclic():
    """Deadlock freedom: the directed channel-dependency graph induced
    by all routes must be acyclic.  True by construction for tree
    routing; verified explicitly here on a ring (which *would* deadlock
    under naive shortest-path ring routing)."""
    import networkx as nx

    topo = T.ring(5, 1)
    tables = compute_routes(topo)
    dep = nx.DiGraph()
    for src in topo.hosts:
        for dst in topo.hosts:
            if src == dst:
                continue
            # Walk the route, collecting directed channels (sw -> hop).
            channels = []
            sw = topo.host_attachment[src]
            while True:
                kind, hop = tables[sw][dst]
                if kind == "host":
                    break
                channels.append((sw, hop))
                sw = hop
            for a, b in zip(channels, channels[1:]):
                dep.add_edge(a, b)
    assert nx.is_directed_acyclic_graph(dep)
