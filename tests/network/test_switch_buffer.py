"""Tests for the shared-buffer switch: no head-of-line blocking, quota
fairness, back-pressure on buffer exhaustion."""

from repro.network import Fabric, Packet, PacketKind
from repro.network import topology as T
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator


def write_packet(src, dst, seq=0):
    return Packet(
        PacketKind.WRITE_REQ, src, dst,
        DEFAULT_PARAMS.packets.write_request, address=seq,
    )


def test_no_head_of_line_blocking():
    """Input port order: many packets to a congested host, then one to
    an uncongested host.  The latter must overtake the backlog (the
    [16] shared-buffer property)."""
    sim = Simulator()
    fabric = Fabric(sim, DEFAULT_PARAMS, T.star(3))
    received = {1: [], 2: []}

    def drain(node, count):
        def consumer():
            for _ in range(count):
                received[node].append(
                    ((yield fabric.port(node).receive()), sim.now)
                )

        return sim.spawn(consumer(), name=f"drain{node}")

    # Node 1 has no consumer: its path backs up.  60 packets to node 1
    # first, then 1 packet to node 2.
    def sender():
        for i in range(60):
            yield fabric.port(0).send(write_packet(0, 1, i))
        yield fabric.port(0).send(write_packet(0, 2, 999))

    proc = drain(2, 1)
    sim.spawn(sender())
    sim.run_until_done([proc], limit_ns=10**9)
    # The node-2 packet arrived even though node 1's stream is stuck
    # inside the switch forever (node 1 never drains) — with
    # head-of-line blocking it would never get through.  Its latency
    # is bounded by serializing behind the flood on the shared host
    # link plus one switch transit.
    assert received[2][0][0].address == 999
    assert received[2][0][1] < 60 * 700 + 5_000


def test_output_quota_limits_hot_destination():
    sim = Simulator()
    params = DEFAULT_PARAMS
    fabric = Fabric(sim, params, T.star(3))

    def sender():
        for i in range(80):
            yield fabric.port(0).send(write_packet(0, 1, i))

    sim.spawn(sender())
    sim.run(until=10**8)
    switch = fabric.switches["req"][0]
    # The hot output never exceeds its quota (+1 for the forwarder's
    # in-flight packet), leaving shared-buffer slots for other traffic.
    assert switch.buffer_in_use <= params.sizing.switch_output_quota + 2
    assert switch.peak_buffer_use <= params.sizing.switch_output_quota + 2


def test_replies_travel_response_plane():
    """A reply-class packet must bypass request-plane congestion."""
    sim = Simulator()
    fabric = Fabric(sim, DEFAULT_PARAMS, T.star(3))
    got = []

    def flood():
        for i in range(100):
            yield fabric.port(0).send(write_packet(0, 1, i))

    def send_reply():
        yield 5_000  # after the flood has clogged the request plane
        reply = Packet(
            PacketKind.READ_REPLY, 0, 1,
            DEFAULT_PARAMS.packets.read_reply, value=7,
        )
        yield fabric.port(0).send(reply)

    def reply_drain():
        packet = yield fabric.port(1).receive_reply()
        got.append((packet, sim.now))

    proc = sim.spawn(reply_drain())
    sim.spawn(flood())
    sim.spawn(send_reply())
    sim.run_until_done([proc], limit_ns=10**9)
    # The reply arrived promptly; 100 request packets would take 70 µs.
    assert got[0][1] < 20_000
