"""Unit tests for topology builders."""

import pytest

from repro.network import topology as T


def test_star_single_switch():
    topo = T.star(4)
    assert topo.switch_ids == [0]
    assert topo.hosts == [0, 1, 2, 3]
    assert topo.hosts_on(0) == [0, 1, 2, 3]
    topo.validate()


def test_star_needs_hosts():
    with pytest.raises(ValueError):
        T.star(0)


def test_chain_structure():
    topo = T.chain(3, 2)
    assert topo.switch_ids == [0, 1, 2]
    assert topo.hosts == [0, 1, 2, 3, 4, 5]
    assert topo.neighbors(1) == [0, 2]
    assert topo.hosts_on(2) == [4, 5]
    topo.validate()


def test_ring_closes_the_loop():
    topo = T.ring(4, 1)
    assert set(topo.neighbors(0)) == {1, 3}
    topo.validate()


def test_ring_minimum_size():
    with pytest.raises(ValueError):
        T.ring(2, 1)


def test_mesh2d_structure():
    topo = T.mesh2d(2, 3, hosts_per_switch=1)
    assert len(topo.switch_ids) == 6
    assert set(topo.neighbors((0, 0))) == {(0, 1), (1, 0)}
    assert set(topo.neighbors((1, 1))) == {(1, 0), (1, 2), (0, 1)}
    topo.validate()


def test_duplicate_switch_rejected():
    topo = T.Topology()
    topo.add_switch(0)
    with pytest.raises(ValueError):
        topo.add_switch(0)


def test_duplicate_host_rejected():
    topo = T.star(2)
    with pytest.raises(ValueError):
        topo.attach_host(0, 0)


def test_attach_to_unknown_switch_rejected():
    topo = T.Topology()
    topo.add_switch(0)
    with pytest.raises(ValueError):
        topo.attach_host(0, 99)


def test_self_loop_rejected():
    topo = T.Topology()
    topo.add_switch(0)
    with pytest.raises(ValueError):
        topo.connect_switches(0, 0)


def test_disconnected_topology_fails_validation():
    topo = T.Topology()
    topo.add_switch(0)
    topo.add_switch(1)
    topo.attach_host(0, 0)
    with pytest.raises(ValueError, match="disconnected"):
        topo.validate()


def test_empty_topology_fails_validation():
    topo = T.Topology()
    with pytest.raises(ValueError):
        topo.validate()


@pytest.mark.parametrize("name", ["star", "chain", "ring", "mesh"])
@pytest.mark.parametrize("n_hosts", [2, 5, 9])
def test_by_name_builds_requested_host_count(name, n_hosts):
    topo = T.by_name(name, n_hosts)
    assert topo.hosts == list(range(n_hosts))
    topo.validate()


def test_by_name_unknown():
    with pytest.raises(ValueError):
        T.by_name("hypercube", 4)
