"""Torus fabrics and adaptive routing (DESIGN.md §10).

Four layers of coverage, mirroring the design doc's claims:

- **builder invariants** — wraparound degree (2 per dimension), host
  attachment, and the ``by_name`` auto-sizing used by ``--topology
  torus``;
- **DOR golden cases** — the coordinate-path oracle on a 4×4 torus,
  including the wraparound shortcut and the tie-break toward ``+``;
- **kernel determinism** — the adaptive router's queue-depth choices
  are a pure function of the schedule, so both simulator kernels
  must produce byte-identical protocol traces;
- **fault-soak termination** — the escape network keeps the fabric
  live (and the counter exact) under seeded drops and duplicates.
"""

import pytest

from repro.network import Fabric, Packet, PacketKind
from repro.network import topology as T
from repro.network.adaptive import (
    dor_path,
    dor_route_length,
    minimal_directions,
)
from repro.params import DEFAULT_PARAMS
from repro.sim import make_simulator


# ---------------------------------------------------------------------------
# Builder invariants.
# ---------------------------------------------------------------------------


def test_torus2d_builder_invariants():
    topo = T.torus2d(4, 4, hosts_per_switch=2)
    assert len(topo.switch_ids) == 16
    assert topo.hosts == list(range(32))
    # Every switch has degree 2 per dimension — the wraparound edges
    # make the border rows indistinguishable from the interior.
    for coords in topo.switch_ids:
        assert len(topo.neighbors(coords)) == 4
    # Wraparound edges exist on both axes.
    assert (0, 0) in topo.neighbors((3, 0))
    assert (0, 0) in topo.neighbors((0, 3))
    # Hosts attach in switch-creation (row-major) order.
    assert topo.hosts_on((0, 0)) == [0, 1]
    assert topo.hosts_on((3, 3)) == [30, 31]
    topo.validate()


def test_torus3d_builder_invariants():
    topo = T.torus3d(3, 3, 3, hosts_per_switch=1)
    assert len(topo.switch_ids) == 27
    for coords in topo.switch_ids:
        assert len(topo.neighbors(coords)) == 6
    topo.validate()


def test_torus_edge_count_matches_formula():
    # A d-dimensional torus has exactly d*N switch edges (each switch
    # owns its + neighbor in every dimension, wraparound included).
    topo2 = T.torus2d(4, 5)
    assert len(topo2.switch_edges) == 2 * 4 * 5
    topo3 = T.torus3d(3, 4, 3)
    assert len(topo3.switch_edges) == 3 * 3 * 4 * 3


def test_torus_rejects_degenerate_dimensions():
    # A 2-ring's wraparound edge would coincide with its forward edge.
    with pytest.raises(ValueError):
        T.torus2d(2, 4)
    with pytest.raises(ValueError):
        T.TorusTopology((4,))


def test_by_name_torus_sizes_to_host_count():
    # 24 hosts need a 4x4 at 2 hosts/switch (3x3x2 = 18 is too small).
    topo = T.by_name("torus", 24)
    assert len(topo.switch_ids) == 16
    assert topo.hosts == list(range(24))
    topo.validate()
    topo3 = T.by_name("torus3d", 5)
    assert len(topo3.switch_ids) == 27
    assert topo3.hosts == list(range(5))
    topo3.validate()


# ---------------------------------------------------------------------------
# DOR golden cases (4x4, DESIGN.md §10 walkthrough).
# ---------------------------------------------------------------------------


def test_minimal_directions_prefers_short_way_round():
    dims = (4, 4)
    # 0 -> 3 is one hop backward through the wraparound, not three
    # hops forward.
    assert minimal_directions(dims, (0, 0), (3, 0)) == [(0, -1)]
    # Exactly half way (distance 2 of 4) ties toward +.
    assert minimal_directions(dims, (0, 0), (2, 0)) == [(0, 1)]
    # Both dimensions profitable, reported in dimension order.
    assert minimal_directions(dims, (0, 0), (1, 3)) == [(0, 1), (1, -1)]
    assert minimal_directions(dims, (1, 1), (1, 1)) == []


def test_dor_path_goldens_on_4x4():
    dims = (4, 4)
    # The DESIGN.md §10 walkthrough: (0,0) -> (2,3) corrects dimension
    # 0 first (+1, +1), then dimension 1 the short way round (-1).
    assert dor_path(dims, (0, 0), (2, 3)) == [
        (0, 0), (1, 0), (2, 0), (2, 3),
    ]
    # Wraparound in both dimensions.
    assert dor_path(dims, (3, 3), (0, 0)) == [(3, 3), (0, 3), (0, 0)]
    # Same switch: the path is just the switch itself.
    assert dor_path(dims, (1, 2), (1, 2)) == [(1, 2)]


def test_dor_route_length_between_hosts():
    topo = T.torus2d(4, 4, hosts_per_switch=2)
    # Hosts 0,1 share switch (0,0); host 30 lives on (3,3).
    assert dor_route_length(topo, 0, 1) == 1
    # (0,0) -> (3,3) is one wraparound hop per dimension.
    assert dor_route_length(topo, 0, 30) == 3
    # Maximum DOR distance on a 4x4 is 2 hops per dimension.
    lengths = [
        dor_route_length(topo, 0, h) for h in topo.hosts
    ]
    assert max(lengths) == 5  # 4 hops + the source switch


# ---------------------------------------------------------------------------
# End-to-end delivery and determinism.
# ---------------------------------------------------------------------------


def _write_packet(src, dst, seq):
    return Packet(
        PacketKind.WRITE_REQ,
        src,
        dst,
        DEFAULT_PARAMS.packets.write_request,
        address=seq,
        value=seq,
    )


def _all_to_all(kernel, routing, n_each=3):
    """Run a small all-to-all on a 3x3 torus; returns (received map,
    protocol-relevant trace tuples)."""
    sim = make_simulator(kernel)
    topo = T.torus2d(3, 3, hosts_per_switch=1)
    fabric = Fabric(sim, DEFAULT_PARAMS, topo, routing=routing)
    hosts = topo.hosts
    received = {h: [] for h in hosts}
    drains = []
    expect = (len(hosts) - 1) * n_each

    def consumer(node):
        port = fabric.port(node)
        for _ in range(expect):
            received[node].append((yield port.receive()))

    for h in hosts:
        drains.append(sim.spawn(consumer(h), name=f"drain{h}"))

    def sender(src):
        port = fabric.port(src)
        for seq in range(n_each):
            for dst in hosts:
                if dst != src:
                    yield port.send(_write_packet(src, dst, seq))

    for h in hosts:
        sim.spawn(sender(h), name=f"send{h}")
    sim.run_until_done(drains)
    trace = [
        (p.src, p.dst, p.address, node)
        for node, pkts in sorted(received.items())
        for p in pkts
    ]
    return received, trace


@pytest.mark.parametrize("routing", ["dor", "adaptive"])
def test_all_to_all_delivers_everything(routing):
    received, _ = _all_to_all("bucket", routing)
    for node, pkts in received.items():
        assert len(pkts) == 8 * 3
        assert all(p.dst == node for p in pkts)


@pytest.mark.parametrize("routing", ["dor", "adaptive"])
def test_kernel_equivalence_on_torus(routing):
    """The adaptive queue-depth heuristic reads state both kernels
    agree on at every dispatch, so delivery order must be identical —
    the property that makes `make_simulator` backends interchangeable
    for the A2 grid."""
    _, bucket = _all_to_all("bucket", routing)
    _, reference = _all_to_all("reference", routing)
    assert bucket == reference


def test_dor_delivers_in_order_per_pair():
    received, _ = _all_to_all("bucket", "dor")
    for node, pkts in received.items():
        by_src = {}
        for p in pkts:
            by_src.setdefault(p.src, []).append(p.address)
        for seqs in by_src.values():
            assert seqs == sorted(seqs)


def test_tree_routing_works_on_torus_graph():
    # The A2 baseline: up*/down* over a spanning tree of the torus.
    received, _ = _all_to_all("bucket", "tree")
    assert all(len(pkts) == 8 * 3 for pkts in received.values())


def test_torus_requires_torus_topology():
    sim = make_simulator("bucket")
    with pytest.raises(ValueError):
        Fabric(sim, DEFAULT_PARAMS, T.star(4), routing="dor")
    with pytest.raises(ValueError):
        Fabric(sim, DEFAULT_PARAMS, T.torus2d(3, 3), routing="updown")


# ---------------------------------------------------------------------------
# Fault soak: the escape network keeps the fabric live.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("routing", ["dor", "adaptive"])
def test_fault_soak_terminates_with_exact_counter(routing):
    """Seeded drops + duplicates with go-back-N on: the run must
    terminate (no livelock, no deadlock) with an exact total."""
    from repro.api import Cluster, ClusterConfig
    from repro.workloads import run_hotspot_counter

    cluster = Cluster(ClusterConfig(
        n_nodes=8, topology="torus", routing=routing,
        faults={"seed": 7, "drop_rate": 0.004, "duplicate_rate": 0.002,
                "reliability": True},
    ))
    result = run_hotspot_counter(cluster, increments_per_node=4)
    assert result.final_value == result.expected_value


def test_adaptive_records_queue_depth_and_counters():
    from repro.api import Cluster, ClusterConfig
    from repro.workloads import run_hotspot_counter

    cluster = Cluster(ClusterConfig(
        n_nodes=8, topology="torus", routing="adaptive"))
    run_hotspot_counter(cluster, increments_per_node=2)
    switches = [
        sw for plane in cluster.fabric.torus_switches.values()
        for sw in plane.values()
    ]
    assert sum(sw.packets_routed for sw in switches) > 0
    assert sum(sw.adaptive_hops for sw in switches) > 0
    # Every adaptive decision sampled the candidate queue depths.
    assert sum(sw.queue_depth.count for sw in switches) > 0
