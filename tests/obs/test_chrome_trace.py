"""Chrome trace-event export: valid JSON, ordered events, and lanes
for every layer (CPU, HIB, links)."""

import json

from repro.api import Cluster, ClusterConfig
from repro.obs.chrome_trace import FABRIC_PID, chrome_trace, export_chrome_trace


def _traced_cluster(n_nodes=3):
    config = ClusterConfig(
        n_nodes=n_nodes, protocol="none", trace_lanes=True,
    )
    cluster = Cluster(config)
    seg = cluster.alloc_segment(home=0, pages=1, name="d")
    ctxs = []
    for node in range(1, n_nodes):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg)

        def program(p, base=base, node=node):
            for i in range(4):
                yield p.store(base + 4 * node, i)
            yield p.fence()
            yield p.load(base)

        ctxs.append(cluster.start(proc, program))
    cluster.run(join=ctxs)
    return cluster


def test_trace_is_valid_json_with_ordered_events():
    cluster = _traced_cluster()
    doc = chrome_trace(cluster)
    rendered = json.loads(json.dumps(doc))  # JSON-serialisable end to end
    events = rendered["traceEvents"]
    assert events, "no events exported"
    stamps = [e["ts"] for e in events if e["ph"] != "M"]
    assert stamps == sorted(stamps), "events not in timestamp order"
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 0


def test_trace_has_cpu_hib_and_link_lanes():
    cluster = _traced_cluster()
    events = chrome_trace(cluster)["traceEvents"]
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"cpu_op", "hib_op", "link_xfer"} <= cats
    # Per-node processes plus the fabric process are declared.
    declared = {e["pid"] for e in events
                if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(range(len(cluster))) <= declared
    # Host-adjacent link spans sit in their node's process.
    link_pids = {e["pid"] for e in events
                 if e["ph"] == "X" and e["cat"] == "link_xfer"}
    assert link_pids & set(range(len(cluster)))
    assert link_pids <= set(range(len(cluster))) | {FABRIC_PID}


def test_export_writes_loadable_file(tmp_path):
    cluster = _traced_cluster(n_nodes=2)
    out = tmp_path / "trace.json"
    doc = export_chrome_trace(cluster, path=str(out))
    on_disk = json.loads(out.read_text())
    assert on_disk == json.loads(json.dumps(doc))
    assert on_disk["displayTimeUnit"] == "ns"


def test_lanes_off_means_no_spans():
    cluster = Cluster(ClusterConfig(n_nodes=2))  # trace on, lanes off
    seg = cluster.alloc_segment(home=1, pages=1, name="d")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 1)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    events = chrome_trace(cluster)["traceEvents"]
    assert all(e["ph"] != "X" for e in events)
    # Protocol events still appear as instants.
    assert any(e["ph"] == "i" for e in events)
