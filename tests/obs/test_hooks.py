"""Kernel hooks and the event-loop profiler: accurate counts, and —
critically — no effect on the simulated history."""

from repro.api import Cluster, ClusterConfig
from repro.obs import EventLoopProfiler, KernelHooks
from repro.sim import Simulator


def test_base_hooks_are_no_ops():
    sim = Simulator()
    sim.hooks = KernelHooks()
    fired = []
    sim.schedule(5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5]


def test_profiler_counts_events_exactly():
    sim = Simulator()
    profiler = EventLoopProfiler()
    sim.hooks = profiler

    def tick():
        pass

    for t in (1, 2, 3):
        sim.schedule(t, tick)
    sim.run()
    assert profiler.events_scheduled == 3
    assert profiler.events_executed == 3
    assert profiler.runs == 1
    assert profiler.max_heap_depth >= 1
    assert profiler.wall_seconds > 0.0
    snap = profiler.snapshot()
    assert snap["events_executed"] == 3
    assert any("tick" in label for label, _ in snap["hottest_callbacks"])
    assert "events/s" in profiler.render()


def _observed_run(profile: bool):
    config = ClusterConfig(
        n_nodes=3, protocol="telegraphos",
        metrics=True, profile_kernel=profile,
    )
    with Cluster(config) as cluster:
        seg = cluster.alloc_segment(home=0, pages=1, name="d")
        ctxs = []
        for node in (1, 2):
            proc = cluster.create_process(node=node, name=f"p{node}")
            base = proc.map(seg, mode="replica")

            def program(p, base=base, node=node):
                for i in range(5):
                    yield p.store(base + 4 * node, i)
                    yield from p.fetch_and_add(base + 0x40, 1)
                yield p.fence()

            ctxs.append(cluster.start(proc, program))
        cluster.run(join=ctxs)
    fingerprint = [
        (e.time, e.category, tuple(sorted(e.fields.items())))
        for e in cluster.tracer.events
    ]
    return cluster, cluster.now, fingerprint


def test_profiler_and_metrics_do_not_perturb_simulated_history():
    plain = _observed_run(profile=False)
    profiled = _observed_run(profile=True)
    assert plain[1] == profiled[1], "simulated end times differ"
    assert plain[2] == profiled[2], "event traces differ"
    profiler = profiled[0].profiler
    assert profiler is not None
    assert profiler.events_executed > 0
    assert profiler.events_scheduled >= profiler.events_executed


def test_cluster_exit_detaches_hooks():
    config = ClusterConfig(n_nodes=2, profile_kernel=True)
    with Cluster(config) as cluster:
        assert cluster.sim.hooks is cluster.profiler
    assert cluster.sim.hooks is None


def test_stats_includes_kernel_section_only_when_profiling():
    with Cluster(ClusterConfig(n_nodes=2, profile_kernel=True)) as cluster:
        cluster.run(until=1000)
        assert "kernel" in cluster.stats()
    plain = Cluster(ClusterConfig(n_nodes=2))
    assert "kernel" not in plain.stats()
