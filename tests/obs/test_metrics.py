"""The metrics registry: instruments, dedup, pay-for-use, and exact
end-to-end counts after a known op stream."""

import pytest

from repro.api import Cluster, ClusterConfig
from repro.obs import MetricsRegistry, NULL_METRIC


# -- instruments ----------------------------------------------------------


def test_counter_and_gauge_and_histogram():
    reg = MetricsRegistry()
    c = reg.counter("ops", node=0)
    c.inc()
    c.inc(4)
    g = reg.gauge("depth", node=0)
    g.set(3)
    g.add(2)
    g.set(1)
    h = reg.histogram("latency", node=0)
    for v in (10, 20, 30):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["ops"]["node=0"] == 5
    assert snap["depth"]["node=0"] == {"value": 1, "peak": 5}
    assert snap["latency"]["node=0"]["count"] == 3
    assert snap["latency"]["node=0"]["mean"] == 20


def test_same_name_and_tags_share_an_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)
    assert reg.counter("x", a=1) is not reg.counter("x", a=2)


def test_kind_clash_rejected():
    reg = MetricsRegistry()
    reg.counter("x", node=0)
    with pytest.raises(TypeError):
        reg.gauge("x", node=0)


def test_gauge_fn_evaluated_at_snapshot_time():
    reg = MetricsRegistry()
    box = {"v": 1}
    reg.gauge_fn("lazy", lambda: box["v"], node=0)
    box["v"] = 42
    assert reg.snapshot()["lazy"]["node=0"] == 42


def test_disabled_registry_is_null():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("ops")
    assert c is NULL_METRIC
    c.inc()
    c.observe(3)  # every mutator is a no-op on the shared null
    reg.gauge_fn("lazy", lambda: 1 / 0)  # never evaluated
    assert reg.snapshot() == {}
    assert len(reg) == 0


def test_empty_histogram_snapshots_to_count_zero():
    reg = MetricsRegistry()
    reg.histogram("h")
    assert reg.snapshot()["h"][""] == {"count": 0}


# -- end-to-end: exact counts from a known op stream ----------------------


N_STORES = 12


def _run_store_stream():
    cluster = Cluster(ClusterConfig(n_nodes=2, protocol="none"))
    seg = cluster.alloc_segment(home=1, pages=1, name="data")
    proc = cluster.create_process(node=0, name="writer")
    base = proc.map(seg)

    def program(p):
        for i in range(N_STORES):
            yield p.store(base + 4 * i, i)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    return cluster


def test_known_op_stream_produces_exact_counts():
    cluster = _run_store_stream()
    snap = cluster.stats()["metrics"]
    # N stores from node 0 to home node 1 = N write packets on the
    # issuing host's request link, N issued writes, N acks back.
    assert snap["hib.remote_writes"]["node=0"] == N_STORES
    assert snap["net.link.packets"]["link=host0->sw.req"] == N_STORES
    assert snap["hib.acks_sent"]["node=1"] == N_STORES
    assert snap["hib.acks_received"]["node=0"] == N_STORES
    assert snap["cpu.stores"]["node=0"] == N_STORES
    assert snap["cpu.fences"]["node=0"] == 1
    assert snap["hib.ops_issued"]["node=0"] == N_STORES
    assert snap["hib.outstanding"]["node=0"] == 0
    # The request-wait histogram saw exactly the N serviced packets.
    assert snap["hib.request_wait_ns"]["node=1"]["count"] == N_STORES


def test_metrics_disabled_cluster_still_runs_and_snapshots_empty():
    cluster = Cluster(ClusterConfig(n_nodes=2, metrics=False))
    seg = cluster.alloc_segment(home=1, pages=1, name="data")
    proc = cluster.create_process(node=0, name="w")
    base = proc.map(seg)

    def program(p):
        yield p.store(base, 1)
        yield p.fence()

    cluster.run(join=[cluster.start(proc, program)])
    assert seg.peek(0) == 1
    assert cluster.stats()["metrics"] == {}
    assert len(cluster.metrics) == 0
