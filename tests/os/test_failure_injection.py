"""Failure injection: malformed launches, protection violations, and
the recovery paths §2.2.4 prescribes ("the process will (probably) be
terminated and the HIB will be restored into a clean state")."""

import pytest

from repro.api import Cluster
from repro.hib.registers import Reg
from repro.hib.special import SpecialOpcode
from repro.machine import Load, PalSequence, Store
from repro.machine.cpu import ProtectionViolation
from repro.params import Params


def test_fault_inside_pal_launch_kills_and_resets_hib():
    """Telegraphos I: a store to an invalid address inside the PAL
    launch sequence faults; the OS kills the process and restores the
    HIB special-mode state; the next program's launch works."""
    cluster = Cluster(n_nodes=2, params=Params(prototype=1))
    seg = cluster.alloc_segment(home=1, pages=1, name="sync")
    station = cluster.node(0)

    bad = cluster.create_process(node=0, name="bad")
    bad.map(seg)
    hib_vaddr = bad.binding.hib_vaddr
    outcome = []

    def bad_program(p):
        try:
            yield PalSequence([
                Store(hib_vaddr + Reg.SPECIAL_MODE,
                      SpecialOpcode.FETCH_AND_ADD.value),
                Store(0xBAD_0000, 1),  # unmapped: faults inside PAL
                Load(hib_vaddr + Reg.SPECIAL_RESULT),
            ])
        except ProtectionViolation:
            outcome.append("killed")

    cluster.run_programs([cluster.start(bad, bad_program)])
    assert outcome == ["killed"]
    assert station.os.programs_killed == 1
    # §2.2.4 footnote: the HIB was restored to a clean state.
    assert not station.hib.special1.armed

    # A well-behaved program on the same node now succeeds.
    good = cluster.create_process(node=0, name="good")
    base = good.map(seg)
    got = []

    def good_program(p):
        got.append((yield from p.fetch_and_add(base, 3)))

    cluster.run_programs([cluster.start(good, good_program)])
    assert got == [0]
    assert seg.peek(0) == 3


def test_forged_key_cannot_use_foreign_context():
    """Telegraphos II: process B guesses/forges keys for process A's
    context; every attempt is dropped with a protection event and A's
    context state is untouched."""
    cluster = Cluster(n_nodes=2, params=Params(prototype=2))
    seg = cluster.alloc_segment(home=1, pages=1, name="sync")

    victim = cluster.create_process(node=0, name="victim")
    victim_base = victim.map(seg)
    attacker = cluster.create_process(node=0, name="attacker")
    attacker_base = attacker.map(seg)
    # The attacker legitimately maps the page and its shadow in its
    # OWN space — what it lacks is the victim's key.
    attacker_shadow = cluster.node(0).driver.shadow_for(
        attacker.binding, attacker_base
    )
    protections = []

    def on_protection(payload):
        protections.append(payload)
        yield 0

    cluster.node(0).interrupts.register("hib_protection", on_protection)
    victim_ctx = victim.binding.ctx_id
    wrong_key = (victim.binding.key + 1) & Reg.KEY_MASK

    def attack(p):
        # Forged key into the victim's context.
        yield Store(attacker_shadow, Reg.shadow_argument(victim_ctx, wrong_key))

    cluster.run_programs([cluster.start(attacker, attack)])
    assert len(protections) == 1
    assert cluster.node(0).hib.contexts[victim_ctx].addresses == []

    # The victim's own launches still work.
    got = []

    def victim_prog(p):
        got.append((yield from p.fetch_and_add(victim_base, 1)))

    cluster.run_programs([cluster.start(victim, victim_prog)])
    assert got == [0]


def test_driver_close_revokes_context():
    cluster = Cluster(n_nodes=2, params=Params(prototype=2))
    proc = cluster.create_process(node=0, name="p")
    ctx_id = proc.binding.ctx_id
    cluster.node(0).driver.close(proc.binding)
    assert cluster.node(0).hib.contexts[ctx_id].key is None


def test_context_exhaustion():
    params = Params(prototype=2).with_sizing(contexts=2)
    cluster = Cluster(n_nodes=1, params=params)
    cluster.create_process(node=0, name="a")
    cluster.create_process(node=0, name="b")
    with pytest.raises(RuntimeError, match="contexts"):
        cluster.create_process(node=0, name="c")


def test_atomic_via_nonblocking_go_is_a_launch_error():
    """Atomics must return a result; triggering one with a GO *store*
    is a malformed launch and fails the program (as a driver bug
    would)."""
    cluster = Cluster(n_nodes=2, params=Params(prototype=1))
    seg = cluster.alloc_segment(home=1, pages=1, name="sync")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)
    hib_vaddr = proc.binding.hib_vaddr

    def program(p):
        yield PalSequence([
            Store(hib_vaddr + Reg.SPECIAL_MODE,
                  SpecialOpcode.FETCH_AND_ADD.value),
            Store(base, 1),
            Store(hib_vaddr + Reg.SPECIAL_GO, 0),  # wrong trigger
        ])

    ctx = cluster.start(proc, program)
    cluster.sim.strict_failures = False
    cluster.sim.run()
    from repro.hib import LaunchError

    assert isinstance(ctx.process.exception, LaunchError)


def test_malformed_copy_missing_address_fails_cleanly():
    cluster = Cluster(n_nodes=2, params=Params(prototype=1))
    seg = cluster.alloc_segment(home=1, pages=1, name="s")
    proc = cluster.create_process(node=0, name="p")
    base = proc.map(seg)
    hib_vaddr = proc.binding.hib_vaddr

    def program(p):
        yield PalSequence([
            Store(hib_vaddr + Reg.SPECIAL_MODE,
                  SpecialOpcode.REMOTE_COPY.value),
            Store(base, 0),  # only one address supplied
            Store(hib_vaddr + Reg.SPECIAL_GO, 0),
        ])

    ctx = cluster.start(proc, program)
    cluster.sim.strict_failures = False
    cluster.sim.run()
    from repro.hib import LaunchError

    assert isinstance(ctx.process.exception, LaunchError)
    # The failed launch left special mode (take_launch resets first).
    assert not cluster.node(0).hib.special1.armed


def test_special_op_argument_must_be_shared_memory():
    """A special-op argument naming private DRAM is rejected — only
    shared regions are legal targets."""
    cluster = Cluster(n_nodes=2, params=Params(prototype=1))
    proc = cluster.create_process(node=0, name="p")
    private = proc.map_private(pages=1)
    hib_vaddr = proc.binding.hib_vaddr
    outcome = []

    def program(p):
        try:
            yield PalSequence([
                Store(hib_vaddr + Reg.SPECIAL_MODE,
                      SpecialOpcode.FETCH_AND_ADD.value),
                Store(private, 1),  # goes to DRAM, not the HIB: the
                                    # launch never sees an address
                Load(hib_vaddr + Reg.SPECIAL_RESULT),
            ])
        except Exception as err:
            outcome.append(type(err).__name__)

    ctx = cluster.start(proc, program)
    cluster.sim.strict_failures = False
    cluster.sim.run()
    # Either path is acceptable: the launch errored (no address
    # collected) — never a silent wrong-memory atomic.
    from repro.hib import LaunchError

    assert isinstance(ctx.process.exception, LaunchError) or outcome
