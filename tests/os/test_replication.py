"""Tests for the §2.2.6 alarm-based replication policy."""


from repro.api import Cluster


def make_cluster(threshold=4):
    return Cluster(
        n_nodes=2,
        protocol="telegraphos",
        replication_threshold=threshold,
    )


def test_hot_page_gets_replicated_and_remapped():
    cluster = make_cluster(threshold=4)
    seg = cluster.alloc_segment(home=1, pages=1, name="hot")
    seg.poke(0, 123)
    proc = cluster.create_process(node=0, name="reader")
    base = proc.map(seg)
    cluster.node(0).replication.watch(1, seg.gpage)
    values = []

    def program(p):
        for _ in range(12):
            values.append((yield p.load(base)))
            yield p.think(100_000)  # leave time for the replication IRQ

    cluster.run_programs([cluster.start(proc, program)])
    policy = cluster.node(0).replication
    assert policy.replications == 1
    assert (1, seg.gpage) in policy.replicated
    # The mapping was retargeted to the local copy.
    entry = proc.space.entry_for(base // cluster.amap.page_bytes)
    from repro.machine import Region

    assert cluster.amap.decode(entry.phys_base).region is Region.MPM
    # All reads returned the correct value throughout.
    assert values == [123] * 12


def test_reads_get_faster_after_replication():
    cluster = make_cluster(threshold=4)
    seg = cluster.alloc_segment(home=1, pages=1, name="hot")
    proc = cluster.create_process(node=0, name="reader")
    base = proc.map(seg)
    cluster.node(0).replication.watch(1, seg.gpage)
    latencies = []

    def program(p):
        for _ in range(12):
            start = cluster.now
            yield p.load(base)
            latencies.append(cluster.now - start)
            yield p.think(100_000)

    cluster.run_programs([cluster.start(proc, program)])
    # Early reads cross the network; late reads are local.
    assert latencies[-1] < latencies[0] / 2


def test_replica_stays_coherent_with_home_writes():
    """After replication, a write at the home must be reflected into
    the new replica by the coherence engine."""
    cluster = make_cluster(threshold=2)
    seg = cluster.alloc_segment(home=1, pages=1, name="hot")
    reader = cluster.create_process(node=0, name="reader")
    base = reader.map(seg)
    cluster.node(0).replication.watch(1, seg.gpage)

    def read_phase(p):
        for _ in range(6):
            yield p.load(base)
            yield p.think(100_000)

    cluster.run_programs([cluster.start(reader, read_phase)])
    assert cluster.node(0).replication.replications == 1

    writer = cluster.create_process(node=1, name="writer")
    wbase = writer.map(seg)  # home process, local accesses

    def write_phase(p):
        yield p.store(wbase + 8, 777)

    cluster.run_programs([cluster.start(writer, write_phase)])
    got = []

    def read_again(p):
        got.append((yield p.load(base + 8)))

    cluster.run_programs([cluster.start(reader, read_again, )])
    assert got == [777]


def test_alarm_below_threshold_does_not_replicate():
    cluster = make_cluster(threshold=50)
    seg = cluster.alloc_segment(home=1, pages=1, name="cold")
    proc = cluster.create_process(node=0, name="reader")
    base = proc.map(seg)
    cluster.node(0).replication.watch(1, seg.gpage)

    def program(p):
        for _ in range(5):
            yield p.load(base)

    cluster.run_programs([cluster.start(proc, program)])
    assert cluster.node(0).replication.replications == 0


def test_duplicate_alarm_is_idempotent():
    cluster = make_cluster(threshold=2)
    seg = cluster.alloc_segment(home=1, pages=1, name="hot")
    proc = cluster.create_process(node=0, name="reader")
    base = proc.map(seg)
    policy = cluster.node(0).replication
    policy.watch(1, seg.gpage)

    def program(p):
        for _ in range(8):
            yield p.load(base)
            yield p.think(100_000)

    cluster.run_programs([cluster.start(proc, program)])
    assert policy.replications == 1
