"""Tests for the scheduler, kernel fault path, and the §2.2.4
launch-interruption interplay."""

import pytest

from repro.api import Cluster
from repro.machine import Think
from repro.machine.cpu import ProtectionViolation
from repro.os.scheduler import RoundRobinScheduler
from repro.params import Params


def test_round_robin_interleaves_three_programs():
    cluster = Cluster(n_nodes=1)
    station = cluster.node(0)
    sched = RoundRobinScheduler(
        cluster.sim, cluster.params.timing, station.cpu, quantum_ns=100_000
    )
    order = []
    ctxs = []
    for tag in range(3):
        proc = cluster.create_process(node=0, name=f"p{tag}")

        def program(p, tag=tag):
            for _ in range(6):
                yield Think(40_000)
                order.append(tag)

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    sched.stop()
    # All finished, and execution actually interleaved (not p0 fully
    # before p1).
    assert sorted(order) == [0] * 6 + [1] * 6 + [2] * 6
    first_of = {tag: order.index(tag) for tag in range(3)}
    last_of = {tag: len(order) - 1 - order[::-1].index(tag) for tag in range(3)}
    assert first_of[1] < last_of[0] or first_of[2] < last_of[1]
    assert sched.switches > 0


def test_scheduler_quantum_validation():
    cluster = Cluster(n_nodes=1)
    with pytest.raises(ValueError):
        RoundRobinScheduler(
            cluster.sim, cluster.params.timing, cluster.node(0).cpu, quantum_ns=0
        )


@pytest.mark.parametrize("prototype", [1, 2])
def test_atomics_correct_under_heavy_preemption(prototype):
    """The §2.2.4 guarantee, end to end: with a preemptive scheduler
    constantly switching between two processes that launch special
    operations, every launch still executes correctly — via PAL
    (Tg I) or via per-process contexts (Tg II)."""
    cluster = Cluster(n_nodes=2, params=Params(prototype=prototype))
    seg = cluster.alloc_segment(home=1, pages=1, name="ctr")
    station = cluster.node(0)
    RoundRobinScheduler(
        cluster.sim, cluster.params.timing, station.cpu, quantum_ns=7_000
    )
    per_proc = 8
    ctxs = []
    for tag in range(2):
        proc = cluster.create_process(node=0, name=f"p{tag}")
        base = proc.map(seg)

        def program(p, base=base):
            for _ in range(per_proc):
                yield from p.fetch_and_add(base, 1)

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    assert seg.peek(0) == 2 * per_proc


def test_kernel_kills_on_unserviceable_fault():
    cluster = Cluster(n_nodes=1)
    proc = cluster.create_process(node=0, name="bad")
    killed = []

    def program(p):
        try:
            yield p.load(0xDEAD_0000)
        except ProtectionViolation:
            killed.append(True)

    ctx = cluster.start(proc, program)
    cluster.run_programs([ctx])
    assert killed == [True]
    assert cluster.node(0).os.programs_killed == 1
    assert cluster.node(0).os.faults_handled == 1


def test_kernel_fixer_chain_can_retry():
    cluster = Cluster(n_nodes=1)
    station = cluster.node(0)
    proc = cluster.create_process(node=0, name="p")
    base = proc.map_private(pages=1)
    missing_vaddr = base + cluster.amap.page_bytes  # next, unmapped page
    fixed = []

    def fixer(ctx, fault):
        yield 1000
        if fault.vaddr != missing_vaddr:
            return None
        station.vm.map_private(
            proc.space,
            dram_page=8,
            vpage=fault.vaddr // cluster.amap.page_bytes,
        )
        fixed.append(fault.vaddr)
        return "retry"

    station.os.register_fixer(fixer)
    got = []

    def program(p):
        yield p.store(missing_vaddr, 7)
        got.append((yield p.load(missing_vaddr)))

    cluster.run_programs([cluster.start(proc, program)])
    assert fixed == [missing_vaddr]
    assert got == [7]
    assert cluster.node(0).os.programs_killed == 0


def test_kernel_kill_resets_hib_special_state():
    cluster = Cluster(n_nodes=2)
    station = cluster.node(0)
    station.hib.special1.arm(1)
    proc = cluster.create_process(node=0, name="bad")

    def program(p):
        try:
            yield p.load(0xDEAD_0000)
        except ProtectionViolation:
            pass

    cluster.run_programs([cluster.start(proc, program)])
    assert not station.hib.special1.armed


def test_shared_mapping_registry():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=1, pages=2, name="s")
    proc = cluster.create_process(node=0, name="p")
    vaddr = proc.map(seg)
    mappings = cluster.node(0).os.mappings_of(1, seg.gpage)
    assert len(mappings) == 1
    assert mappings[0].vpage == vaddr // cluster.amap.page_bytes
    assert cluster.node(0).os.mappings_of(1, seg.gpage + 1)
