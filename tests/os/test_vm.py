"""Unit tests for the VM manager."""

import pytest

from repro.machine import AddressMap, Region
from repro.os.vm import VirtualMemoryManager


@pytest.fixture
def vm():
    return VirtualMemoryManager(AddressMap(), node_id=0, mpm_pages=64)


def test_create_space_unique_names(vm):
    vm.create_space("a")
    with pytest.raises(ValueError):
        vm.create_space("a")


def test_vpage_allocation_is_consecutive(vm):
    space = vm.create_space("a")
    first = vm.alloc_vpages(space, 2)
    second = vm.alloc_vpages(space, 1)
    assert second == first + 2


def test_backend_allocation_first_fit(vm):
    a = vm.alloc_backend_pages(2)
    b = vm.alloc_backend_pages(1)
    assert b == a + 2
    vm.free_backend_page(a)
    c = vm.alloc_backend_pages(1)
    assert c == a


def test_backend_pinned_allocation(vm):
    vm.alloc_backend_pages(1, at=10)
    with pytest.raises(ValueError):
        vm.alloc_backend_pages(1, at=10)


def test_backend_exhaustion(vm):
    vm.alloc_backend_pages(64)
    with pytest.raises(RuntimeError, match="exhausted"):
        vm.alloc_backend_pages(1)


def test_map_remote_window_pte(vm):
    space = vm.create_space("a")
    vaddr = vm.map_remote_window(space, home=3, gpage=2, n_pages=2)
    vpage = vaddr // vm.amap.page_bytes
    entry = space.entry_for(vpage)
    decoded = vm.amap.decode(entry.phys_base)
    assert decoded.region is Region.REMOTE
    assert decoded.node == 3
    assert entry.shared_id == (3, 2)
    assert space.entry_for(vpage + 1).shared_id == (3, 3)


def test_map_local_shared_pte(vm):
    space = vm.create_space("a")
    vaddr = vm.map_local_shared(space, local_page=5, home_id=(0, 5))
    entry = space.entry_for(vaddr // vm.amap.page_bytes)
    assert vm.amap.decode(entry.phys_base).region is Region.MPM
    assert entry.shared_id == (0, 5)


def test_map_shadow_of_existing_mapping(vm):
    space = vm.create_space("a")
    vaddr = vm.map_remote_window(space, home=1, gpage=0)
    shadow_vaddr = vm.map_shadow_of(space, vaddr + 0x24)
    entry = space.entry_for(shadow_vaddr // vm.amap.page_bytes)
    decoded = vm.amap.decode(entry.phys_base)
    assert decoded.shadow
    assert decoded.node == 1
    # Page offset preserved.
    assert shadow_vaddr % vm.amap.page_bytes == 0x24


def test_map_shadow_of_unmapped_raises(vm):
    space = vm.create_space("a")
    with pytest.raises(ValueError):
        vm.map_shadow_of(space, 0x1234)


def test_map_private_cacheable(vm):
    space = vm.create_space("a")
    vaddr = vm.map_private(space, dram_page=0, n_pages=1)
    entry = space.entry_for(vaddr // vm.amap.page_bytes)
    assert entry.cacheable
    assert vm.amap.decode(entry.phys_base).region is Region.DRAM


def test_map_hib_and_context_pages(vm):
    from repro.hib.registers import Reg

    space = vm.create_space("a")
    hib_vaddr = vm.map_hib_registers(space)
    ctx_vaddr = vm.map_context_page(space, ctx_id=3)
    hib_entry = space.entry_for(hib_vaddr // vm.amap.page_bytes)
    ctx_entry = space.entry_for(ctx_vaddr // vm.amap.page_bytes)
    assert vm.amap.decode(hib_entry.phys_base).offset == 0
    assert (
        vm.amap.decode(ctx_entry.phys_base).offset
        == Reg.context_page_offset(3, vm.amap.page_bytes)
    )
