"""Regression tests for the cancelled-event heap leak.

Before tombstone compaction, every cancelled :class:`~repro.sim.Timer`
expiry stayed in the event heap until its deadline passed — a
retransmission timer cancelled and re-armed N times left N-1 dead
entries behind.  The kernel now counts tombstones and compacts the
heap in place once they dominate, so an arbitrarily long cancel
history keeps the heap bounded by the live-event population.
"""

from repro.sim import Simulator, Timer

#: Compaction triggers above ``_COMPACT_MIN`` tombstones once they
#: make up half the heap; any generous constant multiple of it is a
#: safe "bounded, not linear in cancellations" ceiling.
HEAP_BOUND = 4 * Simulator._COMPACT_MIN

CYCLES = 10_000


def test_timer_cancel_cycles_keep_heap_bounded():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    peak = 0
    for _ in range(CYCLES):
        timer.start(1_000_000)
        timer.cancel()
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND, (
        f"heap grew to {peak} entries across {CYCLES} cancel cycles"
    )
    sim.run()
    assert not fired


def test_timer_rearm_cycles_keep_heap_bounded():
    # start() on an armed timer cancels the pending expiry implicitly:
    # the re-arm path must compact just like explicit cancellation.
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    peak = 0
    for _ in range(CYCLES):
        timer.start(1_000_000)
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND
    sim.run()
    assert fired == [1_000_000]  # exactly the last arm fires


def test_schedule_cancel_cycles_keep_heap_bounded():
    sim = Simulator()
    peak = 0
    for i in range(CYCLES):
        sim.schedule(10 + i, lambda: None).cancel()
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND


def test_live_events_survive_compaction():
    # Interleave live events with a flood of cancellations and check
    # every live event still fires, in order.
    sim = Simulator()
    hits = []
    for i in range(100):
        sim.schedule(1000 + i, hits.append, i)
        for _ in range(10):
            sim.schedule(5000, lambda: None).cancel()
    executed = sim.run()
    assert hits == list(range(100))
    assert executed == 100


# -- bucket-tier property soak ---------------------------------------------
#
# Randomized post/cancel/compaction sequences, run differentially: the
# tiered kernel (immediate list + calendar buckets + heap, with
# tombstone compaction) must dispatch the exact sequence the pure-heap
# reference kernel does, while its heap stays bounded by the live
# population.  ``REPRO_STRESS_ITERS=N`` multiplies the seed count.

import os
import random

from repro.sim import KERNELS, make_simulator

STRESS_ITERS = max(1, int(os.environ.get("REPRO_STRESS_ITERS", "1")))
SOAK_SEEDS = list(range(200, 200 + 25 * STRESS_ITERS))


def _soak_once(kernel, seed):
    rng = random.Random(seed)
    sim = make_simulator(kernel)
    fired = []
    handles = []
    peak = 0
    for step in range(400):
        r = rng.random()
        if r < 0.45:
            # Cancellable events across all three delay classes.
            handles.append(sim.schedule(
                rng.choice((0, 1, 5, 50, 1 << 15, 1 << 18)),
                fired.append, (step, sim.now)))
        elif r < 0.80:
            if handles:
                handles.pop(rng.randrange(len(handles))).cancel()
        else:
            sim.run(max_events=rng.randrange(1, 4))
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    sim.run()
    return fired, peak


def test_bucket_kernel_soak_matches_reference_and_stays_bounded():
    for seed in SOAK_SEEDS:
        results = {k: _soak_once(k, seed) for k in KERNELS}
        assert results["bucket"][0] == results["reference"][0], (
            f"dispatch order diverged between kernels for seed {seed}"
        )
        # Compaction bound applies to the tiered kernel's heap tier:
        # every event here is cancellable (heap-resident), so the soak
        # exercises tombstone compaction under live traffic.
        assert results["bucket"][1] <= 400 + HEAP_BOUND


def test_bucket_tier_never_holds_cancellable_events():
    # The bucket tier is test-free at dispatch because cancellable
    # events never land there; posts within the horizon do.
    sim = make_simulator("bucket")
    sim.schedule(10, lambda: None)
    assert not sim._buckets and len(sim._heap) == 1
    sim._post(10, lambda: None)
    assert list(sim._buckets) == [10] and len(sim._heap) == 1
    sim.run()
