"""Regression tests for the cancelled-event heap leak.

Before tombstone compaction, every cancelled :class:`~repro.sim.Timer`
expiry stayed in the event heap until its deadline passed — a
retransmission timer cancelled and re-armed N times left N-1 dead
entries behind.  The kernel now counts tombstones and compacts the
heap in place once they dominate, so an arbitrarily long cancel
history keeps the heap bounded by the live-event population.
"""

from repro.sim import Simulator, Timer

#: Compaction triggers above ``_COMPACT_MIN`` tombstones once they
#: make up half the heap; any generous constant multiple of it is a
#: safe "bounded, not linear in cancellations" ceiling.
HEAP_BOUND = 4 * Simulator._COMPACT_MIN

CYCLES = 10_000


def test_timer_cancel_cycles_keep_heap_bounded():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    peak = 0
    for _ in range(CYCLES):
        timer.start(1_000_000)
        timer.cancel()
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND, (
        f"heap grew to {peak} entries across {CYCLES} cancel cycles"
    )
    sim.run()
    assert not fired


def test_timer_rearm_cycles_keep_heap_bounded():
    # start() on an armed timer cancels the pending expiry implicitly:
    # the re-arm path must compact just like explicit cancellation.
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    peak = 0
    for _ in range(CYCLES):
        timer.start(1_000_000)
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND
    sim.run()
    assert fired == [1_000_000]  # exactly the last arm fires


def test_schedule_cancel_cycles_keep_heap_bounded():
    sim = Simulator()
    peak = 0
    for i in range(CYCLES):
        sim.schedule(10 + i, lambda: None).cancel()
        if len(sim._heap) > peak:
            peak = len(sim._heap)
    assert peak <= HEAP_BOUND


def test_live_events_survive_compaction():
    # Interleave live events with a flood of cancellations and check
    # every live event still fires, in order.
    sim = Simulator()
    hits = []
    for i in range(100):
        sim.schedule(1000 + i, hits.append, i)
        for _ in range(10):
            sim.schedule(5000, lambda: None).cancel()
    executed = sim.run()
    assert hits == list(range(100))
    assert executed == 100
