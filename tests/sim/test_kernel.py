"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Delay,
    Future,
    Interrupt,
    SimulationDeadlock,
    Simulator,
)


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, seen.append, "c")
    sim.schedule(10, seen.append, "a")
    sim.schedule(20, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_in_insertion_order():
    sim = Simulator()
    seen = []
    for tag in range(8):
        sim.schedule(5, seen.append, tag)
    sim.run()
    assert seen == list(range(8))


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(25, seen.append, "x"))
    sim.run()
    assert seen == ["x"]
    assert sim.now == 25


def test_schedule_at_past_rejected():
    sim = Simulator()

    def later():
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    sim.schedule(10, later)
    sim.run()


def test_event_cancellation():
    sim = Simulator()
    seen = []
    handle = sim.schedule(10, seen.append, "cancelled")
    sim.schedule(10, seen.append, "kept")
    handle.cancel()
    sim.run()
    assert seen == ["kept"]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(10, seen.append, "early")
    sim.schedule(100, seen.append, "late")
    sim.run(until=50)
    assert seen == ["early"]
    assert sim.now == 50
    sim.run()
    assert seen == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(i, seen.append, i)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert seen == [0, 1, 2]


def test_process_delays_advance_time():
    sim = Simulator()
    marks = []

    def body():
        marks.append(sim.now)
        yield 100
        marks.append(sim.now)
        yield Delay(50)
        marks.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert marks == [0, 100, 150]


def test_process_returns_value_via_join():
    sim = Simulator()

    def child():
        yield 10
        return 42

    def parent():
        result = yield sim.spawn(child(), name="child")
        return result

    proc = sim.spawn(parent(), name="parent")
    sim.run()
    assert proc.done
    assert proc.value == 42


def test_future_resolution_wakes_process_with_value():
    sim = Simulator()
    future = Future()
    got = []

    def waiter():
        value = yield future
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.schedule(77, future.set_result, "hello")
    sim.run()
    assert got == [(77, "hello")]


def test_future_exception_propagates_into_process():
    sim = Simulator()
    future = Future()
    caught = []

    def waiter():
        try:
            yield future
        except ValueError as err:
            caught.append(str(err))

    sim.spawn(waiter())
    sim.schedule(5, future.set_exception, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_yielding_already_resolved_future_resumes_immediately():
    sim = Simulator()
    future = Future()
    future.set_result("ready")
    got = []

    def waiter():
        got.append((yield future))

    sim.spawn(waiter())
    sim.run()
    assert got == ["ready"]
    assert sim.now == 0


def test_process_failure_is_reported_by_run():
    sim = Simulator()

    def bad():
        yield 1
        raise RuntimeError("kaboom")

    sim.spawn(bad(), name="bad")
    with pytest.raises(RuntimeError):
        sim.run()


def test_process_failure_collected_when_not_strict():
    sim = Simulator()
    sim.strict_failures = False

    def bad():
        yield 1
        raise RuntimeError("kaboom")

    proc = sim.spawn(bad(), name="bad")
    sim.run()
    assert proc.done
    assert isinstance(sim.failures[0][1], RuntimeError)


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yielding_garbage_fails_the_process():
    sim = Simulator()
    sim.strict_failures = False

    def bad():
        yield object()

    proc = sim.spawn(bad(), name="bad")
    sim.run()
    assert proc.done
    assert isinstance(proc.exception, TypeError)


def test_negative_delay_fails_the_process():
    sim = Simulator()
    sim.strict_failures = False

    def bad():
        yield -5

    proc = sim.spawn(bad(), name="bad")
    sim.run()
    assert isinstance(proc.exception, ValueError)


def test_interrupt_during_delay_cancels_sleep():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 1_000_000
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    proc = sim.spawn(sleeper(), name="sleeper")
    sim.schedule(50, proc.interrupt, "preempt")
    sim.run()
    assert log == [("interrupted", 50, "preempt")]
    # Crucially the stale delay wakeup at t=1_000_000 must not
    # resume the generator a second time (log stays length 1).
    assert len(log) == 1


def test_interrupt_during_future_wait_suppresses_stale_wakeup():
    sim = Simulator()
    future = Future()
    log = []

    def waiter():
        try:
            value = yield future
            log.append(("value", value))
        except Interrupt:
            log.append("interrupted")
            # Go back to sleep on a delay after the interrupt.
            yield 100
            log.append(("resumed", sim.now))

    proc = sim.spawn(waiter(), name="waiter")
    sim.schedule(10, proc.interrupt, None)
    sim.schedule(20, future.set_result, "late")  # must be ignored
    sim.run()
    assert log == ["interrupted", ("resumed", 110)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield 1

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("too late")
    sim.run()
    assert proc.done


def test_uncaught_interrupt_terminates_process_with_cause_as_value():
    sim = Simulator()

    def sleeper():
        yield 1_000

    proc = sim.spawn(sleeper(), name="sleeper")
    sim.schedule(5, proc.interrupt, "killed")
    sim.run()
    assert proc.done
    assert proc.value == "killed"


def test_run_until_done_raises_deadlock_when_heap_drains():
    sim = Simulator()
    future = Future()  # never resolved

    def stuck():
        yield future

    proc = sim.spawn(stuck(), name="stuck")
    with pytest.raises(SimulationDeadlock):
        sim.run_until_done([proc])


def test_run_check_deadlock_flag():
    sim = Simulator()
    future = Future()

    def stuck():
        yield future

    sim.spawn(stuck(), name="stuck")
    with pytest.raises(SimulationDeadlock) as excinfo:
        sim.run(check_deadlock=True)
    assert "stuck" in str(excinfo.value)


def test_timeout_future():
    sim = Simulator()
    times = []

    def body():
        yield sim.timeout(123)
        times.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert times == [123]


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(tag, period):
        for _ in range(3):
            yield period
            order.append((sim.now, tag))

    sim.spawn(worker("a", 10))
    sim.spawn(worker("b", 15))
    sim.run()
    # At t=30 both wake; "b" scheduled its wakeup first (at t=15, vs
    # "a" at t=20), so insertion order puts "b" first — deterministic.
    assert order == [
        (10, "a"),
        (15, "b"),
        (20, "a"),
        (30, "b"),
        (30, "a"),
        (45, "b"),
    ]


def test_yield_none_is_cooperative_reschedule():
    sim = Simulator()
    order = []

    def one():
        order.append("one-start")
        yield None
        order.append("one-end")

    def two():
        order.append("two-start")
        yield None
        order.append("two-end")

    sim.spawn(one())
    sim.spawn(two())
    sim.run()
    assert order == ["one-start", "two-start", "one-end", "two-end"]


def test_waitable_value_raises_before_completion():
    future = Future()
    with pytest.raises(RuntimeError):
        _ = future.value


def test_future_double_completion_rejected():
    future = Future()
    future.set_result(1)
    with pytest.raises(RuntimeError):
        future.set_result(2)
