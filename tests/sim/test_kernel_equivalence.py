"""Differential equivalence: tiered kernel vs the pure-heap oracle.

The production kernel (:class:`repro.sim.Simulator`) dispatches events
from three tiers — an immediate list, calendar buckets, a binary heap —
merged per timestamp and fired in batches.  The reference kernel
(:class:`repro.sim.ReferenceSimulator`) is the pre-rewrite discipline:
one heap, one event per loop iteration.  Both promise the *identical*
``(time, seq)`` dispatch order, so any observable divergence is a bug
in the tiered kernel's batch collection.

This file checks that promise two ways:

- **Randomized schedules**: ``N_SCHEDULES`` seeded scripts of
  post/cancel/timer/process/wakeup operations (including bound
  ``run(until=…)`` / ``run(max_events=…)`` slices that strand events
  mid-batch) are interpreted against both kernels; the full dispatch
  logs must serialize to identical bytes.  ``REPRO_STRESS_ITERS=N``
  multiplies the schedule count.
- **Cross-kernel cluster pins**: full-cluster workloads (the golden
  retry run, a coherence/hotspot run, the 8-node NIC-collectives run)
  are executed under ``kernel="bucket"`` and ``kernel="reference"``
  and their canonical Chrome-trace exports must be byte-identical.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.sim import (
    KERNELS,
    ReferenceSimulator,
    Simulator,
    make_simulator,
)
from tests.fixtures.golden_runs import (
    canonical_trace_bytes,
    coherence_run,
    collectives_run,
    retry_run,
)

STRESS_ITERS = max(1, int(os.environ.get("REPRO_STRESS_ITERS", "1")))

#: Randomized schedules per test run (the acceptance floor is 1000).
N_SCHEDULES = 1000 * STRESS_ITERS

#: Delay palette: immediate tier (0), bucket tier (small), heap tier
#: (beyond the default horizon), plus awkward in-between values.
DELAYS = (0, 0, 0, 1, 2, 3, 7, 10, 10, 64, 1000,
          Simulator.DEFAULT_BUCKET_HORIZON,
          Simulator.DEFAULT_BUCKET_HORIZON + 1,
          1 << 20)


# -- schedule scripts -------------------------------------------------------
#
# A script is a list of plain tuples built from one RNG, then
# interpreted against each kernel.  All nondeterminism lives in the
# script; the interpreter makes no random choices, so both kernels see
# the same operation stream and any log divergence is the kernel's.

def _children(rng: random.Random, depth: int):
    """Events posted from inside an event callback (the fused delay-0
    producer paths), nested up to ``depth``."""
    if depth <= 0 or rng.random() < 0.6:
        return ()
    return tuple(
        (rng.choice(DELAYS), _children(rng, depth - 1))
        for _ in range(rng.randrange(1, 3))
    )


def build_script(seed: int):
    rng = random.Random(seed)
    script = []
    for _ in range(rng.randrange(12, 36)):
        r = rng.random()
        if r < 0.30:
            script.append(("post", rng.choice(DELAYS), _children(rng, 2)))
        elif r < 0.45:
            script.append(("timer", rng.choice(DELAYS)))
        elif r < 0.55:
            script.append(("cancel", rng.randrange(6)))
        elif r < 0.75:
            # A process: a run of yields, each a delay or a wait on a
            # future resolved by a separately scheduled timeout.
            steps = tuple(
                ("delay", rng.choice(DELAYS)) if rng.random() < 0.7
                else ("wait", rng.choice(DELAYS))
                for _ in range(rng.randrange(1, 5))
            )
            script.append(("spawn", steps))
        elif r < 0.85:
            script.append(("run_until", rng.randrange(0, 2000)))
        else:
            script.append(("run_max", rng.randrange(1, 8)))
    script.append(("run_all",))
    return script


class ScriptRunner:
    """Interpret one script against one kernel, logging every dispatch."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []
        self.handles = []
        self._tags = iter(range(1 << 30))

    def _fire(self, tag, children):
        self.log.append((self.sim.now, tag))
        for delay, grandchildren in children:
            self.sim._post(delay, self._fire,
                           (next(self._tags), grandchildren))

    def _process(self, tag, steps):
        for kind, delay in steps:
            if kind == "delay":
                yield delay
            else:
                future = self.sim.future()
                self.sim._post(delay, future.set_result, (tag,))
                got = yield future
                self.log.append((self.sim.now, "woke", tag, got))
            self.log.append((self.sim.now, "step", tag))

    def execute(self, script):
        sim = self.sim
        for op in script:
            kind = op[0]
            if kind == "post":
                sim._post(op[1], self._fire, (next(self._tags), op[2]))
            elif kind == "timer":
                self.handles.append(
                    sim.schedule(op[1], self._fire, next(self._tags), ()))
            elif kind == "cancel":
                if self.handles:
                    self.handles.pop(op[1] % len(self.handles)).cancel()
            elif kind == "spawn":
                tag = next(self._tags)
                sim.spawn(self._process(tag, op[1]), name=f"p{tag}")
            elif kind == "run_until":
                sim.run(until=sim.now + op[1])
            elif kind == "run_max":
                sim.run(max_events=op[1])
            else:
                sim.run()
        sim.run()
        self.log.append(("final", sim.now, sim.events_executed,
                         sim.pending_events))
        return self.log


def _log_bytes(log) -> bytes:
    return json.dumps(log, separators=(",", ":")).encode()


def test_randomized_schedules_dispatch_identically():
    divergent = []
    for seed in range(N_SCHEDULES):
        script = build_script(seed)
        logs = {}
        for kernel in KERNELS:
            logs[kernel] = _log_bytes(
                ScriptRunner(make_simulator(kernel)).execute(script))
        if logs["bucket"] != logs["reference"]:
            divergent.append(seed)
    assert not divergent, (
        f"{len(divergent)}/{N_SCHEDULES} schedules diverged between "
        f"kernels; first failing seeds: {divergent[:10]} — replay with "
        "ScriptRunner(make_simulator(k)).execute(build_script(seed))"
    )


def test_mid_batch_bound_preserves_order():
    # max_events bounds land mid-batch by construction: 7 events share
    # one timestamp, the run is sliced one event at a time, and the
    # pushback/re-merge path must keep seq order on both kernels.
    logs = {}
    for kernel in KERNELS:
        sim = make_simulator(kernel)
        runner = ScriptRunner(sim)
        for i in range(7):
            sim._post(10, runner._fire, (i, ()))
        for _ in range(7):
            sim.run(max_events=1)
        logs[kernel] = _log_bytes(runner.log)
    assert logs["bucket"] == logs["reference"]
    assert json.loads(logs["bucket"])[0] == [10, 0]


def test_until_bound_strands_and_resumes_identically():
    logs = {}
    for kernel in KERNELS:
        sim = make_simulator(kernel)
        runner = ScriptRunner(sim)
        # Immediate events posted *by* an event at t=5, observed across
        # an until=5 boundary, then drained.
        sim._post(5, runner._fire, (0, ((0, ()), (0, ()))))
        sim.run(until=5)
        sim.run(until=5)
        sim._post(0, runner._fire, (99, ()))
        sim.run()
        runner.log.append(("final", sim.now))
        logs[kernel] = _log_bytes(runner.log)
    assert logs["bucket"] == logs["reference"]


def test_cancellation_interleaved_with_dispatch():
    logs = {}
    for kernel in KERNELS:
        sim = make_simulator(kernel)
        runner = ScriptRunner(sim)
        handles = [sim.schedule(20, runner._fire, i, ())
                   for i in range(10)]
        # An event at t=10 cancels half of the t=20 run before it fires.
        sim._post(10, lambda: [handles[i].cancel() for i in (1, 3, 5, 7)])
        sim.run()
        logs[kernel] = _log_bytes(runner.log)
    assert logs["bucket"] == logs["reference"]
    assert [t for _, t in json.loads(logs["bucket"])] == [0, 2, 4, 6, 8, 9]


# -- cross-kernel cluster pins ---------------------------------------------


@pytest.mark.parametrize("build", [retry_run, coherence_run, collectives_run],
                         ids=["retry", "coherence", "collectives"])
def test_cluster_traces_identical_across_kernels(build):
    traces = {
        kernel: canonical_trace_bytes(build(kernel=kernel))
        for kernel in KERNELS
    }
    assert traces["bucket"] == traces["reference"], (
        f"{build.__name__} produced different Chrome traces under the "
        "tiered and reference kernels"
    )


def test_reference_kernel_is_selectable_and_distinct():
    sim = make_simulator("reference")
    assert isinstance(sim, ReferenceSimulator)
    assert isinstance(sim, Simulator)
    # The bucket tier stays disabled even after install-time widening.
    sim.bucket_horizon = 1 << 20
    assert sim.bucket_horizon == -1
    with pytest.raises(ValueError):
        make_simulator("fibonacci")
