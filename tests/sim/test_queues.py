"""Unit tests for the back-pressured bounded queue."""

import pytest

from repro.sim import BoundedQueue, QueueClosed, Simulator


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedQueue(0)


def test_put_get_fifo_order():
    sim = Simulator()
    q = BoundedQueue(4)
    got = []

    def producer():
        for i in range(4):
            yield q.put(i)

    def consumer():
        for _ in range(4):
            item = yield q.get()
            got.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2, 3]


def test_put_blocks_when_full():
    sim = Simulator()
    q = BoundedQueue(2)
    timeline = []

    def producer():
        for i in range(4):
            yield q.put(i)
            timeline.append(("put", i, sim.now))

    def slow_consumer():
        yield 100
        for _ in range(4):
            item = yield q.get()
            timeline.append(("got", item, sim.now))
            yield 100

    sim.spawn(producer())
    sim.spawn(slow_consumer())
    sim.run()
    puts = {i: t for op, i, t in timeline if op == "put"}
    # First two puts are accepted immediately, the rest wait for space.
    assert puts[0] == 0
    assert puts[1] == 0
    assert puts[2] == 100
    assert puts[3] == 200


def test_get_blocks_when_empty():
    sim = Simulator()
    q = BoundedQueue(2)
    got = []

    def consumer():
        item = yield q.get()
        got.append((item, sim.now))

    def late_producer():
        yield 500
        yield q.put("x")

    sim.spawn(consumer())
    sim.spawn(late_producer())
    sim.run()
    assert got == [("x", 500)]


def test_handoff_to_waiting_getter_preserves_order():
    sim = Simulator()
    q = BoundedQueue(1)
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    def producer():
        yield 10
        yield q.put("a")
        yield q.put("b")

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.spawn(producer())
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_try_put_try_get():
    q = BoundedQueue(2)
    assert q.try_put(1)
    assert q.try_put(2)
    assert not q.try_put(3)
    assert q.full
    assert q.try_get() == 1
    assert q.try_get() == 2
    assert q.try_get() is None
    assert q.empty


def test_peek_does_not_consume():
    q = BoundedQueue(2)
    q.try_put("a")
    assert q.peek() == "a"
    assert len(q) == 1


def test_blocked_putters_drain_in_order():
    sim = Simulator()
    q = BoundedQueue(1)
    accepted = []

    def producer(tag):
        yield q.put(tag)
        accepted.append(tag)

    def consumer():
        yield 10
        items = []
        for _ in range(3):
            items.append((yield q.get()))
        return items

    sim.spawn(producer("p0"))
    sim.spawn(producer("p1"))
    sim.spawn(producer("p2"))
    consumer_proc = sim.spawn(consumer())
    sim.run()
    assert consumer_proc.value == ["p0", "p1", "p2"]
    assert accepted == ["p0", "p1", "p2"]


def test_close_fails_waiters():
    sim = Simulator()
    q = BoundedQueue(1)
    outcomes = []

    def consumer():
        try:
            yield q.get()
        except QueueClosed:
            outcomes.append("closed")

    sim.spawn(consumer())
    sim.schedule(10, q.close)
    sim.run()
    assert outcomes == ["closed"]


def test_close_fails_blocked_putter():
    sim = Simulator()
    q = BoundedQueue(1)
    q.try_put("fill")
    outcomes = []

    def producer():
        try:
            yield q.put("blocked")
        except QueueClosed:
            outcomes.append("closed")

    sim.spawn(producer())
    sim.schedule(10, q.close)
    sim.run()
    assert outcomes == ["closed"]


def test_occupancy_statistics():
    q = BoundedQueue(8)
    for i in range(5):
        q.try_put(i)
    q.try_get()
    q.try_put(5)
    assert q.total_puts == 6
    assert q.max_occupancy == 5
