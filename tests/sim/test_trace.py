"""Unit tests for tracing and statistics."""

import pytest

from repro.sim import Accumulator, Simulator, Tracer


def make_tracer(enabled=True):
    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, enabled=enabled)
    return sim, tracer


def test_record_and_select():
    sim, tracer = make_tracer()
    tracer.record("write", node=0, addr=4)
    sim.schedule(10, tracer.record, "write")
    sim.run()
    assert len(tracer.events) == 2
    assert tracer.events[0].time == 0
    assert tracer.events[1].time == 10
    assert tracer.select("write", node=0)[0].addr == 4


def test_disabled_tracer_records_nothing():
    _, tracer = make_tracer(enabled=False)
    tracer.record("write", node=0)
    assert tracer.events == []


def test_category_filter():
    _, tracer = make_tracer()
    tracer.limit_to("read")
    tracer.record("write", node=0)
    tracer.record("read", node=1)
    assert [e.category for e in tracer.events] == ["read"]


def test_event_attribute_access():
    _, tracer = make_tracer()
    tracer.record("apply", value=7)
    event = tracer.events[0]
    assert event.value == 7
    with pytest.raises(AttributeError):
        _ = event.missing


def test_iter_categories_counts():
    _, tracer = make_tracer()
    for _ in range(3):
        tracer.record("a")
    tracer.record("b")
    assert list(tracer.iter_categories()) == [("a", 3), ("b", 1)]


def test_clear():
    _, tracer = make_tracer()
    tracer.record("a")
    tracer.clear()
    assert tracer.events == []


def test_accumulator_basic_stats():
    acc = Accumulator("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        acc.add(v)
    assert acc.count == 4
    assert acc.mean == pytest.approx(2.5)
    assert acc.minimum == 1.0
    assert acc.maximum == 4.0
    assert acc.total == pytest.approx(10.0)
    assert acc.stddev == pytest.approx(1.29099, rel=1e-4)


def test_accumulator_percentiles():
    acc = Accumulator()
    for v in range(1, 101):
        acc.add(float(v))
    assert acc.percentile(0) == 1.0
    assert acc.percentile(100) == 100.0
    assert acc.percentile(50) == pytest.approx(50.5)


def test_accumulator_single_sample_percentile():
    acc = Accumulator()
    acc.add(42.0)
    assert acc.percentile(99) == 42.0
    assert acc.stddev == 0.0


def test_accumulator_empty_raises():
    acc = Accumulator("empty")
    with pytest.raises(ValueError):
        _ = acc.mean
    with pytest.raises(ValueError):
        acc.percentile(50)


def test_accumulator_percentile_bounds():
    acc = Accumulator()
    acc.add(1.0)
    with pytest.raises(ValueError):
        acc.percentile(101)


def test_accumulator_summary_keys():
    acc = Accumulator()
    acc.add(5.0)
    summary = acc.summary()
    assert set(summary) == {"count", "mean", "min", "max", "p50", "p99"}
