"""The ``python -m repro`` command-line surface.

The help-drift gate: every registered subcommand must be documented
in README.md, and the expected command set must match the parser —
adding a subcommand without documenting it fails here.
"""

import shutil
from pathlib import Path

from repro.__main__ import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECTED_COMMANDS = {"check", "stats", "trace", "bench-perf", "sweep"}


def registered_commands():
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    return set(subparsers.choices)


def test_help_lists_every_subcommand():
    assert registered_commands() == EXPECTED_COMMANDS
    help_text = build_parser().format_help()
    for command in EXPECTED_COMMANDS:
        assert command in help_text, command


def test_readme_documents_every_subcommand():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for command in EXPECTED_COMMANDS:
        assert command in readme, (
            f"README.md does not mention the `{command}` subcommand"
        )


def test_collectives_flag_on_every_cluster_command():
    """`--collectives {host,nic}` is part of the cluster surface:
    present on stats/trace/bench-perf and (as the exploratory mode) on
    sweep — and documented in README.md."""
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    for command in ("stats", "trace", "sweep"):
        sub = subparsers.choices[command]
        (action,) = [a for a in sub._actions
                     if "--collectives" in a.option_strings]
        assert set(action.choices) == {"host", "nic"}, command
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "--collectives" in readme, (
        "README.md does not document the --collectives flag"
    )


def test_stats_cli_accepts_collectives_backend(capsys):
    assert main(["stats", "--nodes", "2", "--collectives", "nic"]) == 0
    assert "remote_writes" in capsys.readouterr().out


def test_sweep_cli_round_trip(tmp_path, capsys):
    """`sweep --only T1 --force` over a copy of the committed results
    recomputes T1 byte-identically and regenerates the document."""
    results_dir = tmp_path / "results"
    shutil.copytree(REPO_ROOT / "results", results_dir)
    out = tmp_path / "EXPERIMENTS.md"
    code = main([
        "sweep", "--only", "T1", "--force",
        "--results-dir", str(results_dir), "--out", str(out),
    ])
    assert code == 0
    assert (results_dir / "T1.json").read_bytes() \
        == (REPO_ROOT / "results" / "T1.json").read_bytes()
    assert out.read_bytes() \
        == (REPO_ROOT / "EXPERIMENTS.md").read_bytes()
    assert "1 ran" in capsys.readouterr().out


def test_sweep_cli_rejects_unknown_ids(tmp_path, capsys):
    code = main([
        "sweep", "--only", "NOPE",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 2
    assert "NOPE" in capsys.readouterr().err


def test_sweep_cli_render_only_requires_results(tmp_path, capsys):
    code = main([
        "sweep", "--render-only",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 1
    assert "sweep" in capsys.readouterr().err
