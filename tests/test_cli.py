"""The ``python -m repro`` command-line surface.

The help-drift gate: every registered subcommand must be documented
in README.md, and the expected command set must match the parser —
adding a subcommand without documenting it fails here.
"""

import json
import shutil
import sys
from pathlib import Path

from repro.__main__ import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]

# The benchmarks package lives at the repo root, next to ``src`` (the
# same fallback ``repro bench-perf`` itself uses).
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

EXPECTED_COMMANDS = {"check", "stats", "trace", "bench-perf", "sweep",
                     "report"}


def registered_commands():
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    return set(subparsers.choices)


def test_help_lists_every_subcommand():
    assert registered_commands() == EXPECTED_COMMANDS
    help_text = build_parser().format_help()
    for command in EXPECTED_COMMANDS:
        assert command in help_text, command


def test_readme_documents_every_subcommand():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for command in EXPECTED_COMMANDS:
        assert command in readme, (
            f"README.md does not mention the `{command}` subcommand"
        )


def test_collectives_flag_on_every_cluster_command():
    """`--collectives {host,nic}` is part of the cluster surface:
    present on stats/trace/bench-perf and (as the exploratory mode) on
    sweep — and documented in README.md."""
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    for command in ("stats", "trace", "sweep"):
        sub = subparsers.choices[command]
        (action,) = [a for a in sub._actions
                     if "--collectives" in a.option_strings]
        assert set(action.choices) == {"host", "nic"}, command
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "--collectives" in readme, (
        "README.md does not document the --collectives flag"
    )


def test_stats_cli_accepts_collectives_backend(capsys):
    assert main(["stats", "--nodes", "2", "--collectives", "nic"]) == 0
    assert "remote_writes" in capsys.readouterr().out


def test_sweep_cli_round_trip(tmp_path, capsys):
    """`sweep --only T1 --force` over a copy of the committed results
    recomputes T1 byte-identically and regenerates the document."""
    results_dir = tmp_path / "results"
    shutil.copytree(REPO_ROOT / "results", results_dir)
    out = tmp_path / "EXPERIMENTS.md"
    code = main([
        "sweep", "--only", "T1", "--force",
        "--results-dir", str(results_dir), "--out", str(out),
    ])
    assert code == 0
    assert (results_dir / "T1.json").read_bytes() \
        == (REPO_ROOT / "results" / "T1.json").read_bytes()
    assert out.read_bytes() \
        == (REPO_ROOT / "EXPERIMENTS.md").read_bytes()
    assert "1 ran" in capsys.readouterr().out


def test_sweep_cli_rejects_unknown_ids(tmp_path, capsys):
    code = main([
        "sweep", "--only", "NOPE",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 2
    assert "NOPE" in capsys.readouterr().err


def test_sweep_cli_rejects_empty_only_selection(tmp_path, capsys):
    """``--only ","`` used to silently sweep nothing with exit 0; an
    empty selection must now fail loudly, listing the known ids."""
    code = main([
        "sweep", "--only", ",",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "selected no experiments" in err
    assert "T1" in err  # the known-ids list is part of the message


def _sweep_subparser():
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    return subparsers.choices["sweep"]


def test_sweep_distributed_flags_registered_and_documented():
    """The distributed-executor surface: flag drift gate plus README
    coverage for the user-facing pieces."""
    flags = _option_strings(_sweep_subparser())
    assert {
        "--executor", "--spool-dir", "--hosts", "--lease-s",
        "--max-claims", "--shards", "--worker", "--worker-id",
        "--worker-startup-timeout", "--remote-python",
    } <= flags
    (action,) = [a for a in _sweep_subparser()._actions
                 if "--executor" in a.option_strings]
    assert set(action.choices) == {"local", "spool", "ssh"}
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for flag in ("--executor", "--spool-dir", "--hosts", "--worker"):
        assert flag in readme, (
            f"README.md does not document the `{flag}` sweep flag"
        )


def test_sweep_cli_requires_spool_dir_for_spool_executor(tmp_path, capsys):
    code = main([
        "sweep", "--executor", "spool", "--only", "T1",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 2
    assert "--spool-dir" in capsys.readouterr().err


def test_sweep_cli_requires_hosts_for_ssh_executor(tmp_path, capsys):
    code = main([
        "sweep", "--executor", "ssh", "--only", "T1",
        "--spool-dir", str(tmp_path / "spool"),
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 2
    assert "--hosts" in capsys.readouterr().err


def test_sweep_cli_spool_round_trip(tmp_path, capsys):
    """The CLI spool path end to end: coordinator + two in-process
    workers over a fresh spool recompute T1 byte-identically."""
    results_dir = tmp_path / "results"
    shutil.copytree(REPO_ROOT / "results", results_dir)
    out = tmp_path / "EXPERIMENTS.md"
    code = main([
        "sweep", "--only", "T1", "--force",
        "--executor", "spool", "--spool-dir", str(tmp_path / "spool"),
        "--workers", "2",
        "--results-dir", str(results_dir), "--out", str(out),
    ])
    assert code == 0
    assert (results_dir / "T1.json").read_bytes() \
        == (REPO_ROOT / "results" / "T1.json").read_bytes()
    assert out.read_bytes() \
        == (REPO_ROOT / "EXPERIMENTS.md").read_bytes()
    stdout = capsys.readouterr().out
    assert "1 ran" in stdout
    assert "spool executor" in stdout


def test_sweep_cli_list_shows_grid_families(capsys):
    code = main(["sweep", "--list",
                 "--results-dir", str(REPO_ROOT / "results")])
    assert code == 0
    out = capsys.readouterr().out
    for family in ("T2/*", "S3/*", "X1/*", "W1/*", "W2/*"):
        assert family in out, family
    # Point counts and cache status per family.
    assert "| 4 | 4/4 |" in out
    assert "| 5 | 5/5 |" in out


def test_sweep_cli_list_respects_family_globs(capsys):
    code = main(["sweep", "--list", "--only", "W1/*",
                 "--results-dir", str(REPO_ROOT / "results")])
    assert code == 0
    out = capsys.readouterr().out
    assert "W1/*" in out
    assert "T2/*" not in out


# -- repro report ----------------------------------------------------------


def test_report_cli_check_passes_on_committed_aggregates(capsys):
    code = main(["report", "--check",
                 "--results-dir", str(REPO_ROOT / "results")])
    assert code == 0
    assert "aggregates up to date" in capsys.readouterr().out


def test_report_cli_regenerates_committed_aggregates(tmp_path, capsys):
    results_dir = tmp_path / "results"
    shutil.copytree(REPO_ROOT / "results", results_dir)
    shutil.rmtree(results_dir / "aggregates")
    code = main(["report", "--results-dir", str(results_dir)])
    assert code == 0
    for family in ("T2", "S3", "X1", "W1", "W2", "A2"):
        name = f"aggregates/{family}.json"
        assert (results_dir / name).read_bytes() \
            == (REPO_ROOT / "results" / name).read_bytes()
    assert "wrote 6 aggregates" in capsys.readouterr().out


def test_report_cli_check_fails_on_missing_aggregates(tmp_path, capsys):
    results_dir = tmp_path / "results"
    shutil.copytree(REPO_ROOT / "results", results_dir)
    shutil.rmtree(results_dir / "aggregates")
    code = main(["report", "--check", "--results-dir", str(results_dir)])
    assert code == 1
    assert "missing" in capsys.readouterr().err


def test_report_cli_rejects_unknown_family(capsys):
    code = main(["report", "--only", "Z9",
                 "--results-dir", str(REPO_ROOT / "results")])
    assert code == 2
    assert "Z9" in capsys.readouterr().err


def test_sweep_cli_render_only_requires_results(tmp_path, capsys):
    code = main([
        "sweep", "--render-only",
        "--results-dir", str(tmp_path), "--out", str(tmp_path / "E.md"),
    ])
    assert code == 1
    assert "sweep" in capsys.readouterr().err


# -- bench-perf drift gates ------------------------------------------------
#
# The performance suite has two surfaces that can silently drift from
# the code: the ``repro bench-perf`` subcommand (which *forwards* to
# benchmarks.perf.harness rather than calling it directly) and the
# committed BENCH_PERF.json document.  Both are pinned here.


def _bench_perf_subparser():
    parser = build_parser()
    (subparsers,) = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    return subparsers.choices["bench-perf"]


def _option_strings(parser):
    return {
        opt
        for action in parser._actions
        for opt in action.option_strings
        if opt not in ("-h", "--help")
    }


def test_bench_perf_help_matches_harness_surface():
    """Every flag the harness parser defines must exist on the
    ``repro bench-perf`` subcommand and vice versa — adding a harness
    flag without threading it through ``cmd_bench_perf`` fails here."""
    from benchmarks.perf import harness

    cli_flags = _option_strings(_bench_perf_subparser())
    harness_flags = _option_strings(harness.build_parser())
    assert cli_flags == harness_flags
    assert {"--quick", "--repeats", "--out", "--check"} <= cli_flags
    help_text = _bench_perf_subparser().format_help()
    for flag in harness_flags:
        assert flag in help_text, flag


def test_bench_perf_document_schema_in_sync():
    """The committed BENCH_PERF.json must carry the current schema
    version, the three protocol workloads, and one ``fabric_scaling_N``
    entry per mesh size of its mode — plus the aggregate block the
    README quotes throughput retention from."""
    from benchmarks.perf import harness
    from benchmarks.perf.workloads import FABRIC_SCALING_NODES, WORKLOADS

    doc = json.loads((REPO_ROOT / "BENCH_PERF.json").read_text("utf-8"))
    assert doc["schema"] == harness.SCHEMA
    mode = doc["mode"]
    expected = set(WORKLOADS) | {
        f"fabric_scaling_{n}" for n in FABRIC_SCALING_NODES[mode]
    }
    assert set(doc["workloads"]) == expected
    for entry in doc["workloads"].values():
        assert {"events", "wall_s", "events_per_sec"} <= set(entry)
    assert doc["fabric_scaling"]["nodes"] == FABRIC_SCALING_NODES[mode]
    assert len(doc["fabric_scaling"]["points"]) \
        == len(FABRIC_SCALING_NODES[mode])


def test_bench_perf_baseline_covers_scaling_entries():
    """The regression gate is only as good as its baseline: every mode
    must have baseline numbers for every workload the suite emits,
    including the scaling entries, so ``--check`` never silently skips
    a workload."""
    from benchmarks.perf import harness
    from benchmarks.perf.workloads import FABRIC_SCALING_NODES, WORKLOADS

    baseline = harness.load_baseline()
    assert baseline is not None
    for mode, sizes in FABRIC_SCALING_NODES.items():
        recorded = set(baseline["modes"][mode]["workloads"])
        expected = set(WORKLOADS) | {f"fabric_scaling_{n}" for n in sizes}
        assert recorded == expected, mode
