"""Determinism: identical runs produce identical simulated histories.

The simulator is a deterministic event system (FIFO tie-breaking at
equal timestamps, seeded workload generators), so any experiment can
be reproduced bit-for-bit — the property every result in
EXPERIMENTS.md rests on.
"""

from repro.api import Cluster
from repro.workloads import true_sharing_trace, TracePlayer


def mixed_run():
    cluster = Cluster(n_nodes=4, protocol="telegraphos", topology="chain")
    seg = cluster.alloc_segment(home=0, pages=1, name="mix")
    ctxs = []
    for node in (1, 2, 3):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg, mode="replica")

        def program(p, base=base, node=node):
            for i in range(6):
                yield p.store(base + 4 * (i % 3), node * 100 + i)
                yield p.think(1500)
                yield from p.fetch_and_add(base + 0x100, 1)

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    trace_fingerprint = [
        (e.time, e.category, tuple(sorted(e.fields.items())))
        for e in cluster.tracer.events
    ]
    memory_fingerprint = {
        n.node_id: tuple(n.backend.memory.written_words())
        for n in cluster.nodes
    }
    return cluster.now, trace_fingerprint, memory_fingerprint


def test_identical_runs_produce_identical_histories():
    first = mixed_run()
    second = mixed_run()
    assert first[0] == second[0], "simulated end times differ"
    assert first[1] == second[1], "event traces differ"
    assert first[2] == second[2], "final memories differ"


def test_trace_replay_is_deterministic():
    def once():
        cluster = Cluster(n_nodes=3, protocol="telegraphos")
        seg = cluster.alloc_segment(home=0, pages=1, name="t")
        player = TracePlayer(cluster, seg, mode="replica")
        result = player.run(true_sharing_trace([1, 2], refs_per_node=8))
        return result.makespan_ns, {
            n: tuple(acc.samples) for n, acc in result.latency.items()
        }

    assert once() == once()


def faulty_run(fault_seed):
    """A lossy-fabric run: the full fingerprint — trace (including the
    injector's fault events and the transport's retry events), final
    memories, and the metrics snapshot — must be a pure function of
    the fault seed."""
    import json

    cluster = Cluster(
        n_nodes=3, protocol="telegraphos", topology="chain",
        faults={"seed": fault_seed, "drop_rate": 0.03,
                "corrupt_rate": 0.02, "duplicate_rate": 0.02,
                "stall_rate": 0.03},
    )
    seg = cluster.alloc_segment(home=0, pages=1, name="f")
    ctxs = []
    for node in (1, 2):
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg, mode="replica")

        def program(p, base=base, node=node):
            for i in range(6):
                yield p.store(base + 4 * (i % 3), node * 100 + i)
                yield p.think(1100 * node)
            yield p.fence()

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    trace_fingerprint = [
        (e.time, e.category, tuple(sorted(e.fields.items())))
        for e in cluster.tracer.events
    ]
    memory_fingerprint = {
        n.node_id: tuple(n.backend.memory.written_words())
        for n in cluster.nodes
    }
    metrics_fingerprint = json.dumps(cluster.stats()["metrics"],
                                     sort_keys=True)
    return cluster.now, trace_fingerprint, memory_fingerprint, \
        metrics_fingerprint


def test_same_fault_seed_same_history():
    first = faulty_run(7)
    second = faulty_run(7)
    assert first[0] == second[0], "simulated end times differ"
    assert first[1] == second[1], "event traces differ"
    assert first[2] == second[2], "final memories differ"
    assert first[3] == second[3], "metrics snapshots differ"


def test_different_fault_seeds_give_different_histories():
    assert faulty_run(7)[1] != faulty_run(8)[1], (
        "3%+ fault rates over hundreds of traversals must produce "
        "seed-dependent fault schedules")
