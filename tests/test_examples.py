"""Smoke tests: every example script must run to completion and print
its headline output.  (Each example also asserts its own invariants
internally.)"""

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = io.StringIO()
    with redirect_stdout(out):
        module.main()
    return out.getvalue()


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "remote write (issue)" in out
    assert "remote read" in out
    assert "Paper reference points" in out


def test_streaming_pipeline_example():
    out = run_example("streaming_pipeline.py")
    assert "consumers hold replicas" in out
    assert "cut the consumer read latency" in out


def test_parallel_reduction_example():
    out = run_example("parallel_reduction.py")
    assert "[host]" in out and "[nic]" in out
    assert out.count("global sum") == 2


def test_remote_paging_example():
    out = run_example("remote_paging.py")
    assert "paged in" in out
    assert "faster" in out


def test_hotspot_profiling_example():
    out = run_example("hotspot_profiling.py")
    assert "access profile" in out
    assert "alarm: page 0" in out


def test_trace_driven_study_example():
    out = run_example("trace_driven_study.py")
    assert "Data-alignment sensitivity" in out
    assert "Cluster report" in out
