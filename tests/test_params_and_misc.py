"""Unit tests for configuration objects and miscellaneous paths."""

import pytest

from repro.params import (
    DEFAULT_PARAMS,
    PacketSizes,
    Params,
    SizingParams,
    TimingParams,
)


def test_serialization_scales_with_bandwidth():
    timing = TimingParams(link_bytes_per_us=20)
    assert timing.serialization_ns(20) == 1000
    assert timing.serialization_ns(14) == 700


def test_packet_sizes_consistent_with_calibration():
    sizes = PacketSizes()
    # The 14-byte write packet is what pins sustained writes to 0.70 us.
    assert sizes.write_request == 14
    assert DEFAULT_PARAMS.timing.serialization_ns(sizes.write_request) == 700
    assert sizes.read_request == 10
    assert sizes.read_reply == 10
    assert sizes.atomic_request == 18
    assert sizes.atomic_reply == 10
    assert sizes.copy_request == 14
    assert sizes.update == 16
    assert sizes.ack == 6


def test_params_with_timing_override():
    params = DEFAULT_PARAMS.with_timing(cpu_issue_ns=99)
    assert params.timing.cpu_issue_ns == 99
    assert DEFAULT_PARAMS.timing.cpu_issue_ns == 40  # original untouched


def test_params_with_sizing_override():
    params = DEFAULT_PARAMS.with_sizing(contexts=4)
    assert params.sizing.contexts == 4
    assert params.timing is DEFAULT_PARAMS.timing


def test_sizing_page_words():
    assert SizingParams().page_words == 2048


def test_params_frozen():
    import dataclasses

    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_PARAMS.prototype = 2  # type: ignore[misc]


def test_prototype_selection():
    assert Params(prototype=2).prototype == 2
    assert DEFAULT_PARAMS.prototype == 1


def test_repro_package_exports():
    import repro

    assert repro.__version__ == "1.0.0"
    assert repro.Cluster is not None
    assert repro.DEFAULT_PARAMS is DEFAULT_PARAMS
