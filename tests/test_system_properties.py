"""System-level property tests: conservation and ordering invariants
that must hold for every randomly generated workload."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Channel, Cluster
from repro.params import Params


@given(
    plan=st.lists(
        st.tuples(
            st.sampled_from([0, 1, 2]),          # issuing node
            st.sampled_from(["write", "read", "atomic"]),
            st.integers(min_value=0, max_value=15),   # word
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=15, deadline=None)
def test_property_operation_conservation(plan):
    """Every issued remote operation completes exactly once: no
    pending reply futures, no outstanding counters, no lost atomics —
    for any operation mix from any nodes."""
    cluster = Cluster(n_nodes=4, trace=False)
    seg = cluster.alloc_segment(home=3, pages=1, name="t")
    per_node = {}
    for node, kind, word in plan:
        per_node.setdefault(node, []).append((kind, word))
    expected_adds = sum(1 for _, kind, _ in plan if kind == "atomic")
    ctxs = []
    for node, ops in per_node.items():
        proc = cluster.create_process(node=node, name=f"p{node}")
        base = proc.map(seg)

        def program(p, ops=ops):
            for kind, word in ops:
                if kind == "write":
                    yield p.store(base + 4 * word, word)
                elif kind == "read":
                    yield p.load(base + 4 * word)
                else:
                    yield from p.fetch_and_add(base + 0x100, 1)
            yield p.fence()

        ctxs.append(cluster.start(proc, program))
    cluster.run_programs(ctxs)
    assert seg.peek(0x100) == expected_adds
    for station in cluster.nodes:
        assert station.hib.outstanding.count == 0
        assert not station.hib._pending, "reply future leaked"
        assert len(station.hib._read_tokens) == 1


@given(
    payloads=st.lists(
        st.lists(st.integers(0, 2**31), min_size=1, max_size=4),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=10, deadline=None)
def test_property_channel_fifo_exact(payloads):
    """The message channel delivers exactly the sent payloads, in
    order, for any payload contents."""
    cluster = Cluster(n_nodes=2, trace=False)
    channel = Channel(cluster, sender_node=0, receiver_node=1, name="ch",
                      capacity=3, slot_words=8)
    sp = cluster.create_process(node=0, name="s")
    rp = cluster.create_process(node=1, name="r")
    channel.sender.bind(sp)
    channel.receiver.bind(rp)
    got = []

    def send(p):
        for payload in payloads:
            yield from channel.sender.send(payload)

    def recv(p):
        for _ in payloads:
            got.append((yield from channel.receiver.recv()))

    cluster.run_programs([cluster.start(sp, send), cluster.start(rp, recv)])
    assert got == payloads


@given(quantum_us=st.integers(min_value=3, max_value=40))
@settings(max_examples=8, deadline=None)
def test_property_atomics_survive_any_preemption_quantum(quantum_us):
    """§2.2.4's guarantee must hold for *every* preemption cadence,
    on both prototypes."""
    from repro.os.scheduler import RoundRobinScheduler

    for prototype in (1, 2):
        cluster = Cluster(n_nodes=2, params=Params(prototype=prototype),
                          trace=False)
        seg = cluster.alloc_segment(home=1, pages=1, name="ctr")
        RoundRobinScheduler(
            cluster.sim, cluster.params.timing, cluster.node(0).cpu,
            quantum_ns=quantum_us * 1000,
        )
        per_proc = 4
        ctxs = []
        for tag in range(2):
            proc = cluster.create_process(node=0, name=f"p{tag}")
            base = proc.map(seg)

            def program(p, base=base):
                for _ in range(per_proc):
                    yield from p.fetch_and_add(base, 1)

            ctxs.append(cluster.start(proc, program))
        cluster.run_programs(ctxs)
        assert seg.peek(0) == 2 * per_proc, f"prototype {prototype}"
