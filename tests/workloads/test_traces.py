"""Tests for the trace format, generators, and player."""

import pytest

from repro.api import Cluster
from repro.workloads import (
    Trace,
    TracePlayer,
    TraceRecord,
    false_sharing_trace,
    private_pages_trace,
    true_sharing_trace,
)


# -- format / generators -------------------------------------------------


def test_record_rejects_unaligned_offset():
    with pytest.raises(ValueError):
        TraceRecord(0, True, 0, offset=2)


def test_trace_introspection():
    trace = false_sharing_trace([1, 2], refs_per_node=3)
    assert trace.nodes() == [1, 2]
    assert len(trace) == 3 * 2 * 2  # read + write per reference
    assert trace.writes() == 6
    per_node = trace.per_node()
    assert set(per_node) == {1, 2}


def test_false_sharing_words_are_disjoint_per_node():
    trace = false_sharing_trace([1, 2], refs_per_node=10, words_per_node=4)
    words = {1: set(), 2: set()}
    for record in trace.records:
        words[record.node].add(record.offset // 4)
    assert words[1] <= set(range(0, 4))
    assert words[2] <= set(range(4, 8))
    assert all(r.page == 0 for r in trace.records)


def test_true_sharing_overlaps():
    trace = true_sharing_trace([1, 2], refs_per_node=20, shared_words=2)
    words = {1: set(), 2: set()}
    for record in trace.records:
        words[record.node].add(record.offset // 4)
    assert words[1] & words[2]


def test_private_pages_use_distinct_pages():
    trace = private_pages_trace([1, 2], refs_per_node=5)
    pages = {1: set(), 2: set()}
    for record in trace.records:
        pages[record.node].add(record.page)
    assert pages[1] == {0}
    assert pages[2] == {1}
    assert trace.n_pages == 2


def test_generators_deterministic():
    a = false_sharing_trace([1, 2], seed=9)
    b = false_sharing_trace([1, 2], seed=9)
    assert a.records == b.records


# -- the player -------------------------------------------------------------


def play(mode, protocol, trace):
    cluster = Cluster(n_nodes=3, protocol=protocol)
    seg = cluster.alloc_segment(home=0, pages=max(1, trace.n_pages),
                                name="trace")
    player = TracePlayer(cluster, seg, mode=mode)
    return cluster, player.run(trace)


def test_player_remote_mode_runs_trace():
    trace = true_sharing_trace([1, 2], refs_per_node=4)
    cluster, result = play("remote", "none", trace)
    assert result.makespan_ns > 0
    assert set(result.latency) == {1, 2}
    assert sum(acc.count for acc in result.latency.values()) == len(trace)


def test_player_replica_mode_is_coherent():
    trace = true_sharing_trace([1, 2], refs_per_node=6)
    cluster, result = play("replica", "telegraphos", trace)
    checker = cluster.checker()
    assert not checker.subsequence_violations()
    assert not checker.divergent_words(cluster.backends(), words_per_page=4)


def test_player_vsm_mode_counts_faults():
    trace = true_sharing_trace([1, 2], refs_per_node=4, think_ns=500_000)
    cluster = Cluster(n_nodes=3)
    seg = cluster.alloc_segment(home=0, pages=1, name="trace")
    player = TracePlayer(cluster, seg, mode="vsm")
    result = player.run(trace)
    assert player._vsm.read_faults + player._vsm.write_faults > 0
    assert result.makespan_ns > 0


def test_player_rejects_bad_mode():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=0, pages=1, name="t")
    with pytest.raises(ValueError):
        TracePlayer(cluster, seg, mode="weird")


def test_player_rejects_oversized_trace():
    cluster = Cluster(n_nodes=2)
    seg = cluster.alloc_segment(home=0, pages=1, name="t")
    player = TracePlayer(cluster, seg)
    trace = Trace([TraceRecord(1, True, 5, 0)], n_pages=6, description="big")
    with pytest.raises(ValueError):
        player.run(trace)
