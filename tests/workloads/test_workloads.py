"""Tests for the workload generators."""

import pytest

from repro.api import Cluster
from repro.workloads import (
    hot_page_stream,
    run_hotspot_counter,
    run_migratory,
    run_producer_consumer,
    uniform_stream,
)


# -- access patterns -------------------------------------------------------


def test_uniform_stream_deterministic():
    a = uniform_stream(100, 4, seed=7)
    b = uniform_stream(100, 4, seed=7)
    assert a.accesses == b.accesses
    assert len(a) == 100


def test_uniform_stream_spreads_pages():
    pattern = uniform_stream(400, 4, seed=1)
    counts = pattern.page_counts()
    assert all(c > 50 for c in counts)


def test_hot_page_stream_is_skewed():
    pattern = hot_page_stream(500, 4, hot_fraction=0.9, seed=1)
    counts = pattern.page_counts()
    assert counts[0] > 0.8 * len(pattern)
    assert sum(counts[1:]) < 0.2 * len(pattern)


def test_offsets_word_aligned():
    pattern = uniform_stream(50, 2, seed=3)
    assert all(offset % 4 == 0 for _, offset, _ in pattern.accesses)


# -- producer/consumer --------------------------------------------------------


def test_producer_consumer_replica_mode():
    cluster = Cluster(n_nodes=3, protocol="telegraphos")
    result = run_producer_consumer(
        cluster, producer_node=0, consumer_nodes=[1, 2],
        batches=3, words_per_batch=8, sharing="replica",
    )
    assert result.consumer_read_ns.count == 2 * 3 * 8
    assert result.makespan_ns > 0


def test_producer_consumer_remote_mode():
    cluster = Cluster(n_nodes=2, protocol="none")
    result = run_producer_consumer(
        cluster, consumer_nodes=[1], batches=2, words_per_batch=4,
        sharing="remote",
    )
    assert result.consumer_read_ns.count == 8


def test_replica_reads_cheaper_than_remote_reads():
    """The point of eager updating (§2.2.7): consumer reads become
    local."""
    remote = run_producer_consumer(
        Cluster(n_nodes=2, protocol="none"),
        consumer_nodes=[1], batches=3, words_per_batch=8, sharing="remote",
    )
    replica = run_producer_consumer(
        Cluster(n_nodes=2, protocol="telegraphos"),
        consumer_nodes=[1], batches=3, words_per_batch=8, sharing="replica",
    )
    assert replica.consumer_read_ns.mean < remote.consumer_read_ns.mean / 2


def test_producer_consumer_bad_mode():
    cluster = Cluster(n_nodes=2)
    with pytest.raises(ValueError):
        run_producer_consumer(cluster, sharing="bogus")


# -- hotspot ------------------------------------------------------------------


def test_hotspot_no_lost_updates():
    cluster = Cluster(n_nodes=4)
    result = run_hotspot_counter(cluster, increments_per_node=6)
    assert result.final_value == result.expected_value == 24
    assert result.lost_updates == 0
    assert result.atomic_ns.count == 24


def test_hotspot_home_atomics_cheaper_than_remote():
    cluster = Cluster(n_nodes=2)
    result = run_hotspot_counter(cluster, home=0, increments_per_node=5)
    # Mixed latencies: home-local atomics vs network round trips.
    assert result.atomic_ns.minimum < result.atomic_ns.maximum / 2


# -- migratory ------------------------------------------------------------------


def test_migratory_remote_mode_correct():
    cluster = Cluster(n_nodes=3, protocol="none")
    result = run_migratory(cluster, rounds_per_node=2, words=4,
                           sharing="remote")
    assert result.final_sum == result.expected_sum
    assert result.total_updates_sent == 0


def test_migratory_replica_mode_correct_but_chatty():
    cluster = Cluster(n_nodes=3, protocol="telegraphos")
    result = run_migratory(cluster, rounds_per_node=2, words=4,
                           sharing="replica")
    assert result.final_sum == result.expected_sum
    # Update protocol multicasts every write to every replica.
    assert result.total_updates_sent > 0
